"""Batch and service statistics: latency percentiles, throughput,
worker utilization.

Every decoded image carries a ``(worker, started, finished)`` span
measured with the shared monotonic clock (``time.perf_counter`` is
system-wide on Linux, so spans from process-pool workers are directly
comparable to the parent's wall-clock window).  :class:`BatchStats`
reduces one batch's spans into the numbers an operator watches —
images/sec, p50/p90/p99 latency, and busy-time utilization per worker —
and :class:`ServiceStats` accumulates those across the batches a
long-running :class:`~repro.service.batch.DecodeService` processes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

#: Sliding window of per-image latency samples retained for service
#: percentiles.  Counters (images, wall time, throughput) are exact
#: forever; latency percentiles cover the most recent window so a
#: long-running ``repro serve`` neither grows without bound nor pays
#: an O(N log N) sort per ``GET /stats`` after millions of requests.
LATENCY_WINDOW = 4096


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated *q*-th percentile (q in [0, 100]) of *values*.

    Stdlib-only on purpose (the service layer must not pull numpy into
    its hot submission path); matches ``numpy.percentile``'s default
    "linear" method.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


@dataclass(frozen=True)
class WorkSpan:
    """One unit of worker-side busy time attributed to a named worker."""

    worker: str
    started: float      # perf_counter at task start (worker side)
    finished: float     # perf_counter at task end (worker side)

    @property
    def duration_s(self) -> float:
        """Busy seconds this span contributed."""
        return max(0.0, self.finished - self.started)


@dataclass
class BatchStats:
    """Reduced metrics for one decoded batch."""

    batch_size: int
    ok: int
    failed: int
    wall_s: float
    workers: int
    images_per_sec: float
    latency_p50_ms: float
    latency_p90_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    #: Sum of worker busy seconds / (wall_s * workers) in [0, 1].
    worker_utilization: float
    #: Busy seconds keyed by worker name (thread name or "pid-<n>").
    per_worker_busy_s: dict[str, float] = field(default_factory=dict)
    #: Result bytes that crossed shared memory (descriptor transport).
    bytes_shm: int = 0
    #: Result bytes that crossed a process boundary pickled.
    bytes_pickle: int = 0

    @classmethod
    def from_spans(cls, *, batch_size: int, ok: int, failed: int,
                   wall_s: float, workers: int,
                   latencies_s: list[float],
                   spans: list[WorkSpan],
                   bytes_shm: int = 0,
                   bytes_pickle: int = 0) -> "BatchStats":
        """Reduce per-image latencies and worker spans into one record."""
        lat_ms = [s * 1e3 for s in latencies_s] or [0.0]
        busy: dict[str, float] = {}
        for span in spans:
            busy[span.worker] = busy.get(span.worker, 0.0) + span.duration_s
        denom = wall_s * max(1, workers)
        util = min(1.0, sum(busy.values()) / denom) if denom > 0 else 0.0
        return cls(
            batch_size=batch_size, ok=ok, failed=failed,
            wall_s=wall_s, workers=workers,
            images_per_sec=(ok + failed) / wall_s if wall_s > 0 else 0.0,
            latency_p50_ms=percentile(lat_ms, 50),
            latency_p90_ms=percentile(lat_ms, 90),
            latency_p99_ms=percentile(lat_ms, 99),
            latency_mean_ms=sum(lat_ms) / len(lat_ms),
            worker_utilization=util,
            per_worker_busy_s=busy,
            bytes_shm=bytes_shm,
            bytes_pickle=bytes_pickle,
        )

    def format(self) -> str:
        """One-paragraph human-readable summary (CLI/benchmark output)."""
        return (
            f"batch={self.batch_size} ok={self.ok} failed={self.failed} "
            f"wall={self.wall_s * 1e3:.1f}ms "
            f"throughput={self.images_per_sec:.2f} img/s "
            f"latency p50/p90/p99="
            f"{self.latency_p50_ms:.1f}/{self.latency_p90_ms:.1f}/"
            f"{self.latency_p99_ms:.1f}ms "
            f"util={self.worker_utilization * 100.0:.0f}% "
            f"({self.workers} workers)"
        )


@dataclass
class ExecutorUsage:
    """Running per-lane totals for scheduled batches."""

    images: int = 0
    predicted_us: float = 0.0
    observed_us: float = 0.0
    #: Real worker busy seconds spent on this lane's images (only
    #: meaningful once the lane runs on its own bound pool).
    busy_s: float = 0.0
    #: The lane's bound pool, when lane-bound execution is active.
    pool_backend: str = ""
    pool_workers: int = 0

    @property
    def bias(self) -> float:
        """Observed/predicted time ratio (1.0 = the model was exact).

        With lane-bound pools the observation is real wall-clock while
        the prediction stays in the model's simulated microseconds, so
        the bias is the lane's wall-per-simulated-us factor rather than
        a dimensionless error — still exactly what the feedback scale
        converges to.
        """
        if self.predicted_us <= 0:
            return 1.0
        return self.observed_us / self.predicted_us

    def utilization(self, total_wall_s: float) -> float:
        """Busy fraction of this lane's pool over *total_wall_s*."""
        if total_wall_s <= 0 or self.pool_workers <= 0:
            return 0.0
        return min(1.0, self.busy_s / (total_wall_s * self.pool_workers))


@dataclass
class ServiceStats:
    """Running totals across every batch a service instance processed."""

    batches: int = 0
    images_ok: int = 0
    images_failed: int = 0
    total_wall_s: float = 0.0
    #: Scheduled batches only: images that ran via restart-segment
    #: fan-out because they dominated their batch.
    images_split: int = 0
    #: Scheduled batches only: per-lane placement and prediction totals.
    per_executor: dict[str, ExecutorUsage] = field(default_factory=dict)
    #: Result bytes moved through each transport across all batches.
    bytes_shm: int = 0
    bytes_pickle: int = 0
    #: Fault-tolerance counters: task re-dispatches after worker
    #: crashes, images failed on infrastructure (crash past the retry
    #: budget), requests shed at their deadline, and worker-pool
    #: rebuilds observed so far.
    retries: int = 0
    infra_failures: int = 0
    deadline_expired: int = 0
    pool_rebuilds: int = 0
    #: Requests refused at admission by weighted load shedding, counted
    #: per priority class (fills under overload; empty otherwise).
    shed_by_priority: dict = field(default_factory=dict)
    #: Sharded serving only: latest per-host link health snapshot
    #: (endpoint, in-flight depth, bytes over TCP, breaker state) —
    #: the distributed mirror of :attr:`per_executor`.
    per_host: dict = field(default_factory=dict)
    _latencies_s: deque = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW))

    def record(self, stats: BatchStats, latencies_s: list[float]) -> None:
        """Fold one batch's reduced stats into the running totals."""
        self.batches += 1
        self.images_ok += stats.ok
        self.images_failed += stats.failed
        self.total_wall_s += stats.wall_s
        self.bytes_shm += stats.bytes_shm
        self.bytes_pickle += stats.bytes_pickle
        self._latencies_s.extend(latencies_s)

    def record_faults(self, *, retries: int = 0, infra_failures: int = 0,
                      deadline_expired: int = 0,
                      pool_rebuilds: int | None = None) -> None:
        """Fold one batch's fault-tolerance activity into the totals.

        *pool_rebuilds* is the decoder's *cumulative* rebuild counter
        (it replaces rather than adds — pools heal outside the
        per-batch accounting); the other arguments are per-batch
        increments.
        """
        self.retries += retries
        self.infra_failures += infra_failures
        self.deadline_expired += deadline_expired
        if pool_rebuilds is not None:
            self.pool_rebuilds = pool_rebuilds

    def record_shed(self, priority: int) -> None:
        """Count one request refused at admission by weighted shedding."""
        self.shed_by_priority[priority] = \
            self.shed_by_priority.get(priority, 0) + 1

    def record_hosts(self, hosts: dict) -> None:
        """Replace the per-host link snapshot (sharded serving; the
        counters inside are cumulative on the host links themselves)."""
        self.per_host = dict(hosts)

    def record_schedule(self, schedule, results,
                        lane_pools: dict | None = None) -> None:
        """Fold one scheduled batch's placements into per-lane totals.

        *schedule* is the batch's
        :class:`~repro.service.scheduler.BatchSchedule`; *results* the
        matching :class:`~repro.service.batch.ImageResult` list (same
        index space).  Per-lane observed/predicted totals use the same
        :func:`~repro.service.scheduler.lane_outcomes` extraction the
        feedback loop uses, so the reported bias always matches what
        the scheduler learned from.  *lane_pools* (the batch's
        lane→pool binding map, when it ran on lane-bound executor
        pools) attributes each lane's real busy seconds to its pool so
        :meth:`as_dict` can report per-lane pool utilization.
        """
        from .scheduler import lane_outcomes

        self.images_split += sum(a.split for a in schedule.assignments)
        by_index = {a.index: a for a in schedule.assignments}
        for a, observed in lane_outcomes(schedule, results):
            usage = self.per_executor.setdefault(
                a.executor.name, ExecutorUsage())
            usage.images += 1
            usage.predicted_us += a.predicted_us
            usage.observed_us += observed
        if lane_pools:
            for i, result in enumerate(results):
                a = by_index.get(i)
                if a is None or a.executor is None:
                    continue
                pool = lane_pools.get(a.executor.name)
                if pool is None:
                    continue
                usage = self.per_executor.setdefault(
                    a.executor.name, ExecutorUsage())
                usage.busy_s += sum(s.duration_s for s in result.spans)
                usage.pool_backend = pool.get("backend", "")
                usage.pool_workers = pool.get("workers", 0)

    @property
    def images_per_sec(self) -> float:
        """Aggregate throughput across all recorded batches."""
        total = self.images_ok + self.images_failed
        return total / self.total_wall_s if self.total_wall_s > 0 else 0.0

    def as_dict(self) -> dict:
        """JSON-serializable snapshot of the running totals.

        The shape the HTTP shim's ``GET /stats`` endpoint returns (via
        :meth:`~repro.service.session.DecodeSession.stats_snapshot`,
        which adds queue occupancy and scheduler feedback on top).
        Latency percentiles are 0.0 before the first image completes.

        The two time horizons are labeled explicitly so ``/stats`` and
        ``/metrics`` consumers can't silently mix them: latency
        percentiles cover only the most recent :data:`LATENCY_WINDOW`
        images (``latency_ms.horizon == "window"``), while the image
        counters and ``images_per_sec`` are exact lifetime totals
        (``throughput.horizon == "lifetime"``).
        """
        lat = [s * 1e3 for s in self._latencies_s] or [0.0]
        return {
            "batches": self.batches,
            "images_ok": self.images_ok,
            "images_failed": self.images_failed,
            "images_split": self.images_split,
            "total_wall_s": self.total_wall_s,
            "images_per_sec": self.images_per_sec,
            "throughput": {
                "horizon": "lifetime",
                "images_per_sec": self.images_per_sec,
                "images": self.images_ok + self.images_failed,
                "total_wall_s": self.total_wall_s,
            },
            "latency_ms": {
                "horizon": "window",
                "window_size": len(self._latencies_s),
                "window_capacity": LATENCY_WINDOW,
                "p50": percentile(lat, 50),
                "p90": percentile(lat, 90),
                "p99": percentile(lat, 99),
                "mean": sum(lat) / len(lat),
            },
            "transport": {
                "shm_bytes": self.bytes_shm,
                "pickle_bytes": self.bytes_pickle,
            },
            "faults": {
                "retries": self.retries,
                "infra_failures": self.infra_failures,
                "deadline_expired": self.deadline_expired,
                "pool_rebuilds": self.pool_rebuilds,
                "shed_by_priority": {
                    str(priority): count for priority, count
                    in sorted(self.shed_by_priority.items())
                },
            },
            "per_host": {name: dict(entry) for name, entry
                         in sorted(self.per_host.items())},
            "per_executor": {
                name: {
                    "images": u.images,
                    "predicted_us": u.predicted_us,
                    "observed_us": u.observed_us,
                    "bias": u.bias,
                    "busy_s": u.busy_s,
                    "pool": {
                        "backend": u.pool_backend,
                        "workers": u.pool_workers,
                    },
                    "utilization": u.utilization(self.total_wall_s),
                }
                for name, u in sorted(self.per_executor.items())
            },
        }

    def format(self) -> str:
        """Multi-batch closing summary (printed by ``repro serve-batch``)."""
        lat = [s * 1e3 for s in self._latencies_s] or [0.0]
        text = (
            f"{self.batches} batches, {self.images_ok} ok / "
            f"{self.images_failed} failed, "
            f"{self.images_per_sec:.2f} img/s overall, "
            f"latency p50/p99={percentile(lat, 50):.1f}/"
            f"{percentile(lat, 99):.1f}ms"
        )
        if self.per_executor:
            lanes = " ".join(
                f"{name}={u.images} (bias {u.bias:.2f})"
                for name, u in sorted(self.per_executor.items()))
            text += f"\nscheduled placements: {lanes}"
            if self.images_split:
                text += (f", {self.images_split} split "
                         f"(restart/speculative fan-out)")
        if (self.retries or self.infra_failures or self.deadline_expired
                or self.pool_rebuilds):
            text += (f"\nfaults: {self.retries} retries, "
                     f"{self.infra_failures} infra failures, "
                     f"{self.deadline_expired} deadline-expired, "
                     f"{self.pool_rebuilds} pool rebuilds")
        if self.shed_by_priority:
            shed = " ".join(
                f"p{priority}={count}" for priority, count
                in sorted(self.shed_by_priority.items()))
            text += f"\nshed by priority: {shed}"
        if self.per_host:
            hosts = " ".join(
                f"{entry.get('endpoint', name)}"
                f"[{entry.get('breaker', '?')}]"
                f"={entry.get('requests', 0)}"
                for name, entry in sorted(self.per_host.items()))
            text += f"\nhosts: {hosts}"
        return text
