"""Fault injection for the decode service: declarative chaos plans.

Serving millions of users means worker processes die (OOM killer,
segfaults in native code, operator error), lanes brown out, and shared
memory fills up.  None of those failure modes can be provoked reliably
by waiting for them — this module makes them *schedulable*.  A
:class:`FaultPlan` is a parent-side, thread-safe decision table that
:class:`~repro.service.batch.BatchDecoder` consults once per task
dispatch; the chosen :class:`FaultDirective` (a tiny picklable record)
rides into the worker alongside the task and is applied there:

- ``kill`` — the worker SIGKILLs itself at task entry, exactly like a
  crashed/OOM-killed process (thread/serial backends raise
  :class:`~repro.errors.WorkerCrashError` instead, which travels the
  same infrastructure-failure path through the future).  This is what
  the self-healing pool + retry machinery is proven against.
- ``exception`` — an unexpected ``RuntimeError`` raised *inside* the
  decode (not a :class:`~repro.errors.ReproError`), proving the
  per-image isolation contract holds for arbitrary failures.
- ``delay`` — the worker sleeps before decoding: a browned-out lane,
  the signal the scheduler's EWMA feedback and the chaos benchmark's
  recovery measurement consume.
- ``shm_fail`` — the worker's shared-memory publish raises, forcing
  the pickle fallback path (the decode must still succeed).

Plans count *dispatches* (retries included, like real traffic), decide
deterministically from ordinals (``kill_at={3}``), periods
(``kill_every=100``) or a seeded rate (``kill_rate=0.01`` for the chaos
benchmark), and keep per-kind injection counters so tests can assert
exactly what was injected.

Remote lanes (:mod:`repro.service.remote`) apply directives
*client-side*, in the lane pool's I/O threads, because no directive
can ride a TCP frame into another process tree: ``kill`` raises
:class:`~repro.errors.WorkerCrashError` before the request is sent —
indistinguishable from a host dying mid-request, so it exercises the
failover + breaker path; ``delay`` sleeps in the I/O thread (a slow
link/browned-out host); ``exception`` synthesizes the decode-error
result a crashed decode would have produced; ``shm_fail`` is a no-op —
no shared memory crosses the wire.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass
from random import Random

from ..errors import ServiceError, WorkerCrashError

#: Fault kinds a directive may carry.
FAULT_KINDS = ("kill", "exception", "delay", "shm_fail")


@dataclass(frozen=True)
class FaultDirective:
    """One injected fault, resolved parent-side, applied worker-side.

    Picklable and tiny: only the directive crosses the process
    boundary, never the plan.
    """

    #: One of :data:`FAULT_KINDS`.
    kind: str
    #: Sleep applied before decoding (``kind="delay"`` only).
    delay_s: float = 0.0
    #: Human-readable provenance, echoed in errors the fault causes.
    message: str = "injected fault"


def apply_dispatch_fault(fault: "FaultDirective | None") -> None:
    """Apply a crash/delay directive at worker task entry.

    ``kill`` directives SIGKILL the worker process — indistinguishable
    from a real crash, so the parent sees ``BrokenProcessPool`` — or,
    when the task runs in the submitting process (thread/serial
    backends), raise :class:`~repro.errors.WorkerCrashError` so the
    simulated crash still surfaces through the future as an
    infrastructure failure rather than a decode error.  ``delay``
    directives sleep.  ``exception``/``shm_fail`` directives are
    applied deeper inside the task (they must land in specific handler
    scopes) and are ignored here.
    """
    if fault is None:
        return
    if fault.kind == "kill":
        if multiprocessing.current_process().name != "MainProcess":
            os.kill(os.getpid(), signal.SIGKILL)
        raise WorkerCrashError(fault.message)
    if fault.kind == "delay" and fault.delay_s > 0:
        time.sleep(fault.delay_s)


class FaultPlan:
    """Thread-safe parent-side schedule of faults to inject.

    Construct with any combination of triggers; each task dispatch
    (retries included) advances one global ordinal and the first
    matching trigger wins, in severity order ``kill`` > ``exception`` >
    ``shm_fail`` > ``delay``:

    - ``kill_at`` / ``exception_at`` / ``shm_fail_at`` — exact dispatch
      ordinals (0-based) to fault.
    - ``kill_every=N`` — fault every Nth dispatch (ordinals N-1, 2N-1,
      ...); likewise ``exception_every`` / ``shm_fail_every``.
    - ``kill_rate`` — independent per-dispatch crash probability drawn
      from a seeded :class:`random.Random`, the chaos benchmark's
      "1% of decodes die" knob.  Deterministic for a given *seed*.
    - ``delay_lanes`` — ``{lane_name: seconds}``: every dispatch placed
      on that scheduler lane sleeps first (a browned-out device).

    The plan never crosses a process boundary; it hands out
    :class:`FaultDirective` records instead.  :attr:`injected` counts
    directives issued per kind, for test assertions.
    """

    def __init__(self, kill_at=(), kill_every: int | None = None,
                 kill_rate: float = 0.0,
                 exception_at=(), exception_every: int | None = None,
                 shm_fail_at=(), shm_fail_every: int | None = None,
                 delay_lanes: "dict[str, float] | None" = None,
                 seed: int = 0) -> None:
        """Build the decision table; see the class docstring for the
        trigger semantics."""
        for name, every in (("kill_every", kill_every),
                            ("exception_every", exception_every),
                            ("shm_fail_every", shm_fail_every)):
            if every is not None and every <= 0:
                raise ServiceError(f"{name} must be positive, got {every}")
        if not 0.0 <= kill_rate <= 1.0:
            raise ServiceError(f"kill_rate must be in [0, 1], got {kill_rate}")
        self.kill_at = frozenset(kill_at)
        self.kill_every = kill_every
        self.kill_rate = kill_rate
        self.exception_at = frozenset(exception_at)
        self.exception_every = exception_every
        self.shm_fail_at = frozenset(shm_fail_at)
        self.shm_fail_every = shm_fail_every
        self.delay_lanes = dict(delay_lanes or {})
        self._rng = Random(seed)
        self._lock = threading.Lock()
        #: Task dispatches the plan has seen (retries included).
        self.dispatches = 0
        #: Directives issued, counted per fault kind.
        self.injected: dict[str, int] = {k: 0 for k in FAULT_KINDS}

    def _matches(self, n: int, at: frozenset, every: int | None) -> bool:
        """True when ordinal *n* triggers an ``at``/``every`` rule."""
        if n in at:
            return True
        return every is not None and n % every == every - 1

    def next_directive(self, lane: str | None = None
                       ) -> FaultDirective | None:
        """Advance the dispatch ordinal; return the fault to inject.

        *lane* is the scheduler lane the task was placed on (None for
        unscheduled work); it selects ``delay_lanes`` brownouts.
        Returns None for the (common) unfaulted dispatch.
        """
        with self._lock:
            n = self.dispatches
            self.dispatches += 1
            if self._matches(n, self.kill_at, self.kill_every) or (
                    self.kill_rate > 0
                    and self._rng.random() < self.kill_rate):
                self.injected["kill"] += 1
                return FaultDirective(
                    kind="kill", message=f"injected worker kill "
                                         f"(dispatch {n})")
            if self._matches(n, self.exception_at, self.exception_every):
                self.injected["exception"] += 1
                return FaultDirective(
                    kind="exception", message=f"injected decode exception "
                                              f"(dispatch {n})")
            if self._matches(n, self.shm_fail_at, self.shm_fail_every):
                self.injected["shm_fail"] += 1
                return FaultDirective(
                    kind="shm_fail", message=f"injected shm publish failure "
                                             f"(dispatch {n})")
            delay = self.delay_lanes.get(lane) if lane is not None else None
            if delay:
                self.injected["delay"] += 1
                return FaultDirective(
                    kind="delay", delay_s=delay,
                    message=f"injected lane delay ({lane}, {delay}s)")
        return None

    def snapshot(self) -> dict:
        """JSON-ready view of the plan's activity (dispatches seen and
        directives issued per kind)."""
        with self._lock:
            return {"dispatches": self.dispatches,
                    "injected": dict(self.injected)}
