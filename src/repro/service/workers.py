"""Worker-pool backends for the batched decode service.

Three interchangeable backends behind one ``submit``-shaped surface:

- ``"process"`` — ``concurrent.futures.ProcessPoolExecutor``.  The
  default on multi-core hosts: entropy decoding is pure-Python and
  GIL-bound, so real wall-clock scaling needs processes.
- ``"thread"`` — ``ThreadPoolExecutor``.  Lower task overhead, shares
  the fused-table cache, and still overlaps the numpy pixel stages
  (which release the GIL) with another image's entropy decode; also the
  deterministic choice for tests.
- ``"serial"`` — run the task inline on ``submit``.  Zero concurrency,
  zero overhead; the baseline the throughput benchmark compares against
  and the fallback on single-core hosts.

Task functions submitted to the ``process`` backend must be module-level
(picklable) and take picklable arguments — see
:mod:`repro.service.batch` for the task functions themselves.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable

from ..errors import ServiceClosedError, ServiceError

#: Recognized pool backend names.
BACKENDS = ("process", "thread", "serial")


def default_worker_count() -> int:
    """Worker count used when the caller does not pin one (all cores)."""
    return max(1, os.cpu_count() or 1)


def default_backend() -> str:
    """Pick the backend for this host: processes when the host has more
    than one core (entropy decode is GIL-bound), serial otherwise."""
    return "process" if default_worker_count() > 1 else "serial"


def worker_name() -> str:
    """Stable identity of the executing worker, for utilization stats.

    Process-pool workers report ``pid-<os.getpid()>`` (detected via
    ``multiprocessing.current_process()``, which is start-method
    agnostic — fork and spawn both rename pool children); thread-pool
    workers report the executor thread name; the serial backend runs in
    the submitting thread and reports its name (``"main"`` for the main
    thread).
    """
    if multiprocessing.current_process().name != "MainProcess":
        return f"pid-{os.getpid()}"
    thread = threading.current_thread()
    return "main" if thread is threading.main_thread() else thread.name


class WorkerPool:
    """Uniform submit/close wrapper over the three pool backends."""

    def __init__(self, workers: int | None = None,
                 backend: str | None = None,
                 name: str | None = None) -> None:
        """Create a pool of *workers* workers on *backend*.

        ``workers=None`` uses every core; ``backend=None`` picks
        :func:`default_backend`.  *name* labels the pool (lane-bound
        pools use the lane name) and prefixes its worker threads so
        utilization spans attribute to the right pool.
        """
        self.name = name or "decode"
        self.backend = backend or default_backend()
        if self.backend not in BACKENDS:
            raise ServiceError(
                f"unknown worker backend {self.backend!r} "
                f"(choose from {list(BACKENDS)})")
        self.workers = default_worker_count() if workers is None else workers
        if self.workers <= 0:
            raise ServiceError(
                f"worker count must be positive, got {self.workers}")
        self._closed = False
        #: Times a broken pool was rebuilt in place (see :meth:`heal`).
        self.rebuilds = 0
        self._heal_lock = threading.Lock()
        if self.backend == "process":
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        elif self.backend == "thread":
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix=f"{self.name}-worker")
        else:
            self._pool = None
            self.workers = 1

    def submit(self, fn: Callable[..., Any], /, *args: Any,
               **kwargs: Any) -> Future:
        """Schedule ``fn(*args, **kwargs)``; always returns a Future.

        The serial backend runs the task inline and returns an
        already-resolved Future, so callers never branch on backend.
        A process pool found broken at submit time (an earlier worker
        crash poisoned it) is rebuilt in place and the submission
        retried once — a crashed worker never bricks the pool.
        """
        if self._closed:
            raise ServiceClosedError("worker pool is closed")
        if self._pool is not None:
            try:
                return self._pool.submit(fn, *args, **kwargs)
            except BrokenExecutor:
                if not self.heal():
                    raise
                return self._pool.submit(fn, *args, **kwargs)
        fut: Future = Future()
        try:
            fut.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # propagate via the Future contract
            fut.set_exception(exc)
        return fut

    def heal(self) -> bool:
        """Rebuild a broken process pool in place; returns True when a
        rebuild happened.

        A ``ProcessPoolExecutor`` whose worker died (SIGKILL, OOM,
        segfault) is permanently broken: every pending and future
        submission raises ``BrokenProcessPool``.  Healing swaps in a
        fresh executor of the same size and discards the broken one
        (its workers are already dead; ``shutdown(wait=False)`` just
        reaps bookkeeping).  Thread and serial backends cannot break
        and always return False, as does a healthy or closed pool —
        callers may invoke this speculatively after any task failure.
        """
        if self._closed or self.backend != "process":
            return False
        with self._heal_lock:
            if self._closed or not getattr(self._pool, "_broken", False):
                return False
            old = self._pool
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            self.rebuilds += 1
            try:
                old.shutdown(wait=False)
            except Exception:
                pass
            return True

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight tasks to finish."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: close the pool."""
        self.close()
