"""Sharded serving tier: scheduler lanes that live across a socket.

The executor registry binds every scheduler lane to a *local* worker
pool; this module promotes the lane abstraction over TCP so the same
Eq 5/6 pricing + per-lane EWMA feedback machinery places whole images
onto other machines.  Three pieces:

- :class:`DecodeWorkerHost` — a lightweight worker host (``repro
  serve-worker``) wrapping one :class:`~repro.service.session.\
  DecodeSession` behind a length-prefixed TCP protocol.  Requests and
  results travel as one JSON header plus raw binary blobs; decoded
  planes ride the existing :class:`~repro.service.transport.PlaneRef`
  descriptor contract — ``{shape, dtype}`` plus a blob index — so the
  wire format is the byte-transport spelling of the shm descriptor.
- :class:`RemoteLane` / :class:`RemoteLanePool` — an
  :class:`~repro.service.scheduler.ExecutorLane` whose "pool" is a
  bounded-depth TCP client.  The scheduler prices and places onto it
  exactly like a local lane; the pool's bounded in-flight depth makes
  a slow host backpressure placement directly (``submit`` blocks once
  ``depth`` requests are outstanding).
- :class:`ShardRegistry` / :class:`ShardedDecodeSession` — the front
  tier (``repro serve --hosts``).  Batches shard across hosts via LPT,
  remote ``wall_us`` folds into
  :class:`~repro.service.scheduler.ThroughputFeedback`, connection
  failures trip the :class:`~repro.service.scheduler.LaneBreakerBoard`
  (half-open canary = one probe request), and a failed dispatch fails
  over to a surviving host mid-batch.

Wire format (all integers big-endian)::

    u32 header_len | header (JSON, UTF-8) | u32 nblobs
        | { u64 blob_len | blob bytes } * nblobs

Fault semantics: a :class:`~repro.service.faults.FaultPlan` attached to
the front tier's decoder injects faults *client-side* in the lane
pool's I/O threads — ``kill`` raises
:class:`~repro.errors.WorkerCrashError` before the request is sent
(modeling a host that dies mid-request), ``delay`` sleeps, and
``exception`` synthesizes a decode-error result; ``shm_fail`` is
ignored because no shared memory crosses the wire.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import queue as queue_module
from concurrent.futures import Future
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..errors import (
    RemoteHostError,
    RemoteProtocolError,
    ServiceClosedError,
    ServiceError,
)
from .batch import ImageRequest, ImageResult, decode_image_task
from .executors import ExecutorRegistry
from .faults import FaultDirective, apply_dispatch_fault
from .obs import SpanRecord, TraceContext, child_span, map_remote_spans
from .scheduler import ExecutorLane, LaneBreakerBoard, ModelScheduler
from .session import DecodeSession
from .stats import WorkSpan

#: Refuse JSON headers beyond this size: a desynchronized or hostile
#: stream must fail fast, not allocate gigabytes.
MAX_HEADER_BYTES = 16 * 1024 * 1024

#: Refuse single blobs beyond this size (1 GiB covers any plausible
#: decoded plane; a corrupt length prefix must not OOM the host).
MAX_BLOB_BYTES = 1 << 30

#: Default bounded in-flight depth per remote lane: how many requests
#: may be outstanding on one host before placement blocks on it.
DEFAULT_DEPTH = 2

#: ImageRequest fields carried verbatim in the decode header.  The
#: front tier owns deadlines (a shed request never reaches the wire)
#: and fan-out is the host's own policy, so ``deadline_ms`` stays home.
_REQUEST_FIELDS = (
    "request_id", "entropy_engine", "mode", "platform", "idct_method",
    "fancy_upsampling", "split_segments", "speculative", "salvage",
    "priority",
)

#: Scalar ImageResult fields carried verbatim in the result header.
_RESULT_FIELDS = (
    "request_id", "ok", "width", "height", "error_type", "error",
    "segments", "speculative", "misspeculated", "simulated_us",
    "wall_us", "attempts", "infra_failure", "salvaged",
)


# ---------------------------------------------------------------------------
# Framing.
# ---------------------------------------------------------------------------

def send_frame(sock: socket.socket, header: dict,
               blobs: Sequence[bytes] = ()) -> int:
    """Write one complete frame; returns the exact bytes put on the wire.

    The header is compact JSON; blobs follow as length-prefixed raw
    bytes (the byte-transport analog of shm
    :class:`~repro.service.transport.PlaneRef` payloads).
    """
    payload = json.dumps(header, separators=(",", ":")).encode()
    parts = [struct.pack(">I", len(payload)), payload,
             struct.pack(">I", len(blobs))]
    for blob in blobs:
        parts.append(struct.pack(">Q", len(blob)))
        parts.append(bytes(blob))
    data = b"".join(parts)
    sock.sendall(data)
    return len(data)


def frame_nbytes(header: dict, blobs: Sequence[bytes] = ()) -> int:
    """Exact wire size of the frame :func:`send_frame` would emit for
    *header* + *blobs* (used for receive-side byte accounting)."""
    payload = json.dumps(header, separators=(",", ":")).encode()
    return 4 + len(payload) + 4 + sum(8 + len(b) for b in blobs)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly *n* bytes; None on clean EOF *before any byte*,
    :class:`~repro.errors.RemoteProtocolError` on EOF mid-read."""
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(min(1 << 16, n - len(buf)))
        if not chunk:
            if not buf:
                return None
            raise RemoteProtocolError(
                f"connection closed mid-frame ({len(buf)}/{n} bytes)")
        buf.extend(chunk)
    return bytes(buf)


def recv_frame(sock: socket.socket) -> tuple[dict, list[bytes]] | None:
    """Read one complete frame; None on clean EOF at a frame boundary.

    Raises :class:`~repro.errors.RemoteProtocolError` on truncation
    mid-frame, an oversized header/blob, or undecodable header JSON.
    """
    head = _recv_exact(sock, 4)
    if head is None:
        return None

    def need(n: int) -> bytes:
        """Read *n* bytes that MUST arrive (we are inside a frame)."""
        data = _recv_exact(sock, n)
        if data is None:
            raise RemoteProtocolError("connection closed mid-frame")
        return data

    (header_len,) = struct.unpack(">I", head)
    if header_len > MAX_HEADER_BYTES:
        raise RemoteProtocolError(
            f"frame header of {header_len} bytes exceeds the "
            f"{MAX_HEADER_BYTES}-byte limit")
    try:
        header = json.loads(need(header_len).decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise RemoteProtocolError(f"undecodable frame header: {exc}")
    if not isinstance(header, dict):
        raise RemoteProtocolError(
            f"frame header must be a JSON object, got "
            f"{type(header).__name__}")
    (nblobs,) = struct.unpack(">I", need(4))
    blobs: list[bytes] = []
    for _ in range(nblobs):
        (blob_len,) = struct.unpack(">Q", need(8))
        if blob_len > MAX_BLOB_BYTES:
            raise RemoteProtocolError(
                f"frame blob of {blob_len} bytes exceeds the "
                f"{MAX_BLOB_BYTES}-byte limit")
        blobs.append(need(blob_len) if blob_len else b"")
    return header, blobs


# ---------------------------------------------------------------------------
# Request / result codecs.
# ---------------------------------------------------------------------------

def _array_descriptor(array: np.ndarray, blob_index: int) -> dict:
    """The ``PlaneRef``-style wire descriptor of one ndarray: shape +
    dtype in the header, pixels as blob *blob_index*."""
    return {"shape": list(array.shape), "dtype": str(array.dtype),
            "blob": blob_index}


def _array_from_descriptor(descriptor: dict,
                           blobs: Sequence[bytes]) -> np.ndarray:
    """Rebuild the ndarray a :func:`_array_descriptor` describes."""
    try:
        blob = blobs[int(descriptor["blob"])]
        array = np.frombuffer(blob, dtype=np.dtype(descriptor["dtype"]))
        return array.reshape(tuple(descriptor["shape"])).copy()
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise RemoteProtocolError(f"malformed plane descriptor: {exc}")


def encode_request(request: ImageRequest) -> tuple[dict, list[bytes]]:
    """Serialize one decode request: knobs in the header, JFIF bytes as
    the single blob.  ``request_id`` is stringified when it is not a
    JSON scalar (the front tier keys results by batch position, so the
    echoed id is informational on the wire)."""
    fields: dict[str, Any] = {}
    for name in _REQUEST_FIELDS:
        value = getattr(request, name)
        if name == "request_id" \
                and not isinstance(value, (str, int, float, bool,
                                           type(None))):
            value = str(value)
        fields[name] = value
    header: dict[str, Any] = {"op": "decode", "request": fields}
    if request.trace is not None:
        # The trace context rides the header so host-side spans stitch
        # into the client's trace (the host honors any propagated
        # context regardless of its own tracing mode).
        header["trace"] = request.trace.to_dict()
    return header, [bytes(request.data)]


def decode_request(header: dict, blobs: Sequence[bytes]) -> ImageRequest:
    """Rebuild the :class:`~repro.service.batch.ImageRequest` of one
    ``decode`` frame."""
    if not blobs:
        raise RemoteProtocolError("decode frame carries no JPEG blob")
    fields = header.get("request")
    if not isinstance(fields, dict):
        raise RemoteProtocolError("decode frame carries no request header")
    known = {name: fields[name] for name in _REQUEST_FIELDS
             if name in fields}
    trace = header.get("trace")
    if isinstance(trace, dict):
        try:
            known["trace"] = TraceContext.from_dict(trace)
        except (KeyError, TypeError, ValueError) as exc:
            raise RemoteProtocolError(f"malformed trace context: {exc}")
    try:
        return ImageRequest(data=blobs[0], **known)
    except TypeError as exc:
        raise RemoteProtocolError(f"malformed decode request: {exc}")


def encode_result(result: ImageResult) -> tuple[dict, list[bytes]]:
    """Serialize one decode outcome: scalars + spans in the header,
    pixel plane (and salvage error map, when present) as blobs."""
    header: dict[str, Any] = {"op": "result"}
    for name in _RESULT_FIELDS:
        value = getattr(result, name)
        if name == "request_id" \
                and not isinstance(value, (str, int, float, bool,
                                           type(None))):
            value = str(value)
        header[name] = value
    header["salvage_errors"] = list(result.salvage_errors)
    header["spans"] = [[s.worker, s.started, s.finished]
                       for s in result.spans]
    if result.trace_spans:
        header["trace_spans"] = [s.to_dict() for s in result.trace_spans]
    blobs: list[bytes] = []
    if result.rgb is not None:
        header["plane"] = _array_descriptor(result.rgb, len(blobs))
        blobs.append(np.ascontiguousarray(result.rgb).tobytes())
    if result.error_regions is not None:
        header["error_regions"] = _array_descriptor(
            result.error_regions, len(blobs))
        blobs.append(np.ascontiguousarray(result.error_regions).tobytes())
    return header, blobs


def decode_result(header: dict, blobs: Sequence[bytes]) -> ImageResult:
    """Rebuild the :class:`~repro.service.batch.ImageResult` of one
    ``result`` frame (pixels bit-identical to the host's array)."""
    known = {name: header[name] for name in _RESULT_FIELDS
             if name in header}
    try:
        result = ImageResult(**known)
    except TypeError as exc:
        raise RemoteProtocolError(f"malformed decode result: {exc}")
    result.salvage_errors = list(header.get("salvage_errors", ()))
    result.spans = [WorkSpan(worker=str(w), started=float(a),
                             finished=float(b))
                    for w, a, b in header.get("spans", ())]
    try:
        result.trace_spans = [SpanRecord.from_dict(d)
                              for d in header.get("trace_spans", ())]
    except (KeyError, TypeError, ValueError) as exc:
        raise RemoteProtocolError(f"malformed trace spans: {exc}")
    if "plane" in header:
        result.rgb = _array_from_descriptor(header["plane"], blobs)
    if "error_regions" in header:
        result.error_regions = _array_from_descriptor(
            header["error_regions"], blobs)
    return result


# ---------------------------------------------------------------------------
# Worker host.
# ---------------------------------------------------------------------------

class DecodeWorkerHost:
    """One shard: a :class:`~repro.service.session.DecodeSession` served
    over the length-prefixed TCP protocol (``repro serve-worker``).

    Either wrap an existing session (``DecodeWorkerHost(session=s)``)
    or pass session keyword arguments and let the host own one (closed
    with the host).  ``port=0`` binds an ephemeral port; read
    :attr:`port` after construction.  One daemon thread per accepted
    connection; each connection serves frames sequentially (the lane
    pool opens ``depth`` connections to get ``depth``-way concurrency).

    Operations: ``decode`` (request in, result out), ``ping``
    (liveness), ``stats`` (the session's
    :meth:`~repro.service.session.DecodeSession.stats_snapshot`).
    Unknown or malformed frames answer an ``error`` frame; the
    connection survives.
    """

    def __init__(self, session: DecodeSession | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 **session_kwargs: Any) -> None:
        """Bind the listening socket and attach (or build) the session."""
        self._owns_session = session is None
        self.session = session or DecodeSession(**session_kwargs)
        try:
            self._sock = socket.create_server((host, port))
        except OSError:
            if self._owns_session:
                self.session.close(drain=False)
            raise
        self._sock.settimeout(0.2)
        self.host, self.port = self._sock.getsockname()[:2]
        self._stopping = False
        self._lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._threads: list[threading.Thread] = []
        #: Connections accepted so far.
        self.connections = 0
        #: Decode requests served so far.
        self.requests = 0
        #: Exact frame bytes received / sent over all connections.
        self.bytes_rx = 0
        self.bytes_tx = 0

    @property
    def endpoint(self) -> str:
        """``host:port`` of the bound listening socket."""
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Accept connections until :meth:`shutdown` (or :meth:`close`)."""
        while not self._stopping:
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break   # listening socket closed under us
            with self._lock:
                if self._stopping:
                    conn.close()
                    break
                self.connections += 1
                self._conns.add(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True,
                name=f"repro-host-{self.port}-conn{self.connections}")
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, conn: socket.socket) -> None:
        """Serve one connection's frames until EOF or a socket error."""
        try:
            with conn:
                while True:
                    try:
                        frame = recv_frame(conn)
                    except (RemoteProtocolError, OSError):
                        return
                    if frame is None:
                        return
                    header, blobs = frame
                    with self._lock:
                        self.bytes_rx += frame_nbytes(header, blobs)
                    try:
                        reply, out_blobs = self._dispatch(header, blobs)
                    except Exception as exc:   # answer, don't drop
                        reply, out_blobs = {
                            "op": "error",
                            "error_type": type(exc).__name__,
                            "error": str(exc)}, []
                    try:
                        sent = send_frame(conn, reply, out_blobs)
                    except OSError:
                        return
                    with self._lock:
                        self.bytes_tx += sent
        finally:
            with self._lock:
                self._conns.discard(conn)

    def _dispatch(self, header: dict,
                  blobs: Sequence[bytes]) -> tuple[dict, list[bytes]]:
        """Execute one operation frame; returns the reply frame."""
        op = header.get("op")
        if op == "ping":
            return {"op": "pong", "endpoint": self.endpoint}, []
        if op == "stats":
            return {"op": "stats", "endpoint": self.endpoint,
                    "requests": self.requests,
                    "stats": self.session.stats_snapshot()}, []
        if op == "decode":
            host_recv = perf_counter()
            request = decode_request(header, blobs)
            if request.trace is not None:
                # Fork a child context so the host's own "request" span
                # nests under the client's attempt span instead of
                # reusing its span identity.
                request = replace(request, trace=request.trace.child())
            handle = self.session.submit(request, timeout=None)
            result = handle.result()
            with self._lock:
                self.requests += 1
            reply, out_blobs = encode_result(result)
            # Host-clock receive/send stamps: the client estimates the
            # clock offset from these plus its own request/response
            # window (NTP-style midpoints) to stitch host spans into
            # its trace without negative queue waits.
            reply["clock"] = {"recv": host_recv, "send": perf_counter()}
            return reply, out_blobs
        raise RemoteProtocolError(f"unknown operation {op!r}")

    def shutdown(self) -> None:
        """Stop a :meth:`serve_forever` loop running in another thread."""
        self._stopping = True

    def close(self) -> None:
        """Stop accepting, sever live connections, close the owned
        session.  Idempotent."""
        self.shutdown()
        try:
            self._sock.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)
        if self._owns_session:
            self.session.close(drain=False)

    def __enter__(self) -> "DecodeWorkerHost":
        """Context-manager entry: the host itself."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: close socket, connections, session."""
        self.close()


# ---------------------------------------------------------------------------
# Remote lanes.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RemoteLane(ExecutorLane):
    """An :class:`~repro.service.scheduler.ExecutorLane` that lives
    across a socket.

    ``kind="simd"`` keys Eq 5/6 pricing — hosts start priced as the
    platform's parallel CPU path and the per-lane EWMA feedback learns
    each host's real throughput from observed ``wall_us``.  The
    :attr:`mode` override keeps remote requests on the *reference*
    decode path (the host runs real decodes; its own session picks any
    further fan-out), where the inherited mapping would pin the
    simulated SIMD executor.
    """

    host: str = ""
    port: int = 0

    @property
    def mode(self) -> str:
        """Remote images decode for real: always ``"reference"``."""
        return "reference"

    @property
    def endpoint(self) -> str:
        """``host:port`` this lane dispatches to."""
        return f"{self.host}:{self.port}"


def parse_hosts(spec: "str | Iterable[str]") -> list[tuple[str, int]]:
    """Parse ``"host:port,host:port"`` (or an iterable of ``host:port``
    strings / ``(host, port)`` pairs) into ``(host, port)`` tuples."""
    if isinstance(spec, str):
        entries: Iterable[Any] = [s for s in spec.split(",") if s.strip()]
    else:
        entries = spec
    hosts: list[tuple[str, int]] = []
    for entry in entries:
        if isinstance(entry, tuple):
            host, port = entry
        else:
            host, _, port = str(entry).strip().rpartition(":")
            if not host:
                raise ServiceError(
                    f"malformed host spec {entry!r} (want host:port)")
        try:
            port = int(port)
        except (TypeError, ValueError):
            raise ServiceError(
                f"malformed host port in {entry!r} (want an integer)")
        if not 0 < port < 65536:
            raise ServiceError(f"host port out of range in {entry!r}")
        hosts.append((str(host), port))
    if not hosts:
        raise ServiceError("no worker hosts given (want host:port,...)")
    return hosts


def remote_executors(hosts: "str | Iterable[Any]",
                     platform: "object | None" = None
                     ) -> tuple[RemoteLane, ...]:
    """One :class:`RemoteLane` per ``host:port`` entry of *hosts*.

    All lanes share one pricing *platform* (default
    :data:`~repro.evaluation.platforms.GTX560`): pricing only needs a
    consistent relative cost surface, and the per-lane EWMA feedback
    learns each host's absolute speed from observed wall time.
    """
    if platform is None:
        from ..evaluation import platforms
        platform = platforms.GTX560
    lanes = tuple(
        RemoteLane(name=f"remote-{host}:{port}", kind="simd",
                   platform=platform, host=host, port=port)
        for host, port in parse_hosts(hosts))
    if len({lane.name for lane in lanes}) != len(lanes):
        raise ServiceError("duplicate worker host endpoints")
    return lanes


class RemoteLanePool:
    """The worker-pool face of one remote host: a bounded-depth TCP
    client with the :class:`~repro.service.workers.WorkerPool` submit
    surface (``backend="remote"``).

    ``depth`` I/O threads each own one persistent connection to the
    host (opened lazily, reconnected on failure — reconnects count as
    :attr:`rebuilds`, the remote analog of a pool rebuild).
    :meth:`submit` *blocks* once ``depth`` requests are in flight:
    that bounded depth is the backpressure contract — a slow host
    stalls further placement onto it instead of queueing unboundedly.

    Socket-level failures (refused, reset, timeout) resolve the
    request's future with :class:`~repro.errors.RemoteHostError`; the
    batch decoder's gather loop treats that like a worker crash —
    retry (failing over to a sibling host when the registry offers
    one) and charge the lane's breaker.
    """

    def __init__(self, host: str, port: int, depth: int = DEFAULT_DEPTH,
                 name: str | None = None, connect_timeout_s: float = 5.0,
                 request_timeout_s: float = 120.0) -> None:
        """Start *depth* I/O threads targeting ``host:port``.

        No connection is attempted here — hosts may start after the
        front tier; the first submit connects.
        """
        if depth < 1:
            raise ServiceError(f"lane depth must be >= 1, got {depth}")
        self.host, self.port = host, int(port)
        self.name = name or f"remote-{host}:{port}"
        #: Pool-surface attributes the decoder/registry read.
        self.backend = "remote"
        self.workers = depth
        self.depth = depth
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self._closed = False
        self._lock = threading.Lock()
        self._permits = threading.Semaphore(depth)
        self._tasks: "queue_module.Queue[tuple | None]" = \
            queue_module.Queue()
        #: Lifetime counters (exported by :meth:`snapshot`).
        self.requests = 0
        self.failures = 0
        self.reconnects = 0
        self.in_flight = 0
        self.connected = 0
        self.bytes_tx = 0
        self.bytes_rx = 0
        self._threads = [
            threading.Thread(target=self._io_loop, daemon=True,
                             name=f"{self.name}-io{i}")
            for i in range(depth)]
        for thread in self._threads:
            thread.start()

    @property
    def endpoint(self) -> str:
        """``host:port`` this pool dispatches to."""
        return f"{self.host}:{self.port}"

    @property
    def rebuilds(self) -> int:
        """Reconnects after a broken connection — the remote analog of
        a local pool rebuild (summed into the decoder's fault stats)."""
        return self.reconnects

    # -- submit surface -------------------------------------------------

    def submit(self, fn: Callable, /, *args: Any, **kwargs: Any) -> Future:
        """Queue one whole-image decode; blocks while ``depth``
        requests are already in flight (bounded-depth backpressure).

        The positional contract mirrors the batch decoder's dispatch:
        ``submit(decode_image_task, request, slot, fault)``.  Remote
        lanes execute whole images only (no shm slot crosses the
        wire); any other task function is a caller bug.
        """
        if fn is not decode_image_task:
            raise ServiceError(
                f"remote lane pools execute whole-image decode tasks "
                f"only, got {getattr(fn, '__name__', fn)!r}")
        if not args:
            raise ServiceError("remote submit needs an ImageRequest")
        request = args[0]
        slot = args[1] if len(args) > 1 else kwargs.get("slot")
        fault = args[2] if len(args) > 2 else kwargs.get("fault")
        if slot is not None:
            raise ServiceError("remote lane pools take no shm slot")
        if self._closed:
            raise ServiceClosedError(f"remote lane pool {self.name} "
                                     f"is closed")
        self._permits.acquire()
        if self._closed:
            self._permits.release()
            raise ServiceClosedError(f"remote lane pool {self.name} "
                                     f"is closed")
        with self._lock:
            self.in_flight += 1
        future: Future = Future()
        self._tasks.put((future, request, fault))
        return future

    def heal(self) -> bool:
        """Nothing to rebuild locally — reconnection is lazy inside the
        I/O threads; always False."""
        return False

    # -- I/O threads ----------------------------------------------------

    def _io_loop(self) -> None:
        """One I/O thread: take queued requests, round-trip them over a
        persistent (lazily reconnected) connection."""
        sock: socket.socket | None = None
        ever_connected = False
        try:
            while True:
                item = self._tasks.get()
                if item is None:
                    return
                future, request, fault = item
                try:
                    if fault is not None:
                        # Client-side injection: kill raises
                        # WorkerCrashError here (the I/O thread is no
                        # worker process), delay sleeps.
                        apply_dispatch_fault(fault)
                    if fault is not None and fault.kind == "exception":
                        result = ImageResult(
                            request_id=request.request_id, ok=False,
                            error_type="RuntimeError",
                            error=fault.message)
                    else:
                        if sock is None:
                            sock = self._connect(ever_connected)
                            ever_connected = True
                        result = self._roundtrip(sock, request)
                    with self._lock:
                        self.requests += 1
                    future.set_result(result)
                except BaseException as exc:
                    if sock is not None:
                        try:
                            sock.close()
                        except OSError:
                            pass
                        sock = None
                        with self._lock:
                            self.connected -= 1
                    with self._lock:
                        self.failures += 1
                    if not isinstance(exc, ServiceError):
                        exc = RemoteHostError(
                            f"host {self.endpoint}: "
                            f"{type(exc).__name__}: {exc}")
                    future.set_exception(exc)
                finally:
                    with self._lock:
                        self.in_flight -= 1
                    self._permits.release()
        finally:
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
                with self._lock:
                    self.connected -= 1

    def _connect(self, reconnecting: bool) -> socket.socket:
        """Open this thread's persistent connection; count reconnects."""
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s)
        except OSError as exc:
            raise RemoteHostError(
                f"cannot connect to host {self.endpoint}: {exc}")
        sock.settimeout(self.request_timeout_s)
        with self._lock:
            self.connected += 1
            if reconnecting:
                self.reconnects += 1
        return sock

    def _roundtrip(self, sock: socket.socket,
                   request: ImageRequest) -> ImageResult:
        """Send one decode request, receive and rebuild its result."""
        header, blobs = encode_request(request)
        t0 = perf_counter()
        try:
            sent = send_frame(sock, header, blobs)
            frame = recv_frame(sock)
        except socket.timeout:
            raise RemoteHostError(
                f"host {self.endpoint}: no reply within "
                f"{self.request_timeout_s}s")
        except OSError as exc:
            raise RemoteHostError(f"host {self.endpoint}: {exc}")
        with self._lock:
            self.bytes_tx += sent
        if frame is None:
            raise RemoteHostError(
                f"host {self.endpoint} closed the connection")
        reply, reply_blobs = frame
        with self._lock:
            self.bytes_rx += frame_nbytes(reply, reply_blobs)
        if reply.get("op") == "error":
            raise RemoteHostError(
                f"host {self.endpoint} refused the request: "
                f"{reply.get('error_type')}: {reply.get('error')}")
        t1 = perf_counter()
        result = decode_result(reply, reply_blobs)
        # Attribute busy spans to the host so utilization math and the
        # stats per-worker view name where the time was really spent.
        result.spans = [replace(s, worker=f"{self.endpoint}/{s.worker}")
                        for s in result.spans]
        if result.trace_spans:
            clock = reply.get("clock") or {}
            result.trace_spans = map_remote_spans(
                result.trace_spans, self.endpoint, t0, t1,
                host_recv=float(clock.get("recv", t0)),
                host_send=float(clock.get("send", t1)))
        if request.trace is not None:
            result.trace_spans.append(child_span(
                request.trace, "remote_roundtrip", self.endpoint, "read",
                t0, t1, bytes_tx=sent,
                bytes_rx=frame_nbytes(reply, reply_blobs)))
        return result

    # -- lifecycle ------------------------------------------------------

    def snapshot(self) -> dict:
        """Wire/health counters of this host link (per-host stats)."""
        with self._lock:
            return {
                "endpoint": self.endpoint,
                "depth": self.depth,
                "in_flight": self.in_flight,
                "connected": self.connected,
                "requests": self.requests,
                "failures": self.failures,
                "reconnects": self.reconnects,
                "bytes_tx": self.bytes_tx,
                "bytes_rx": self.bytes_rx,
            }

    def close(self) -> None:
        """Drain queued requests, stop the I/O threads.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._tasks.put(None)
        for thread in self._threads:
            thread.join(timeout=10.0)

    def __enter__(self) -> "RemoteLanePool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: close the pool."""
        self.close()


class ShardRegistry(ExecutorRegistry):
    """Lane→pool registry whose pools are :class:`RemoteLanePool` TCP
    clients — the distributed drop-in for
    :class:`~repro.service.executors.ExecutorRegistry`.

    The batch decoder adopts it through the same ``lane_pools=``
    parameter; every inherited accessor (``pool_for``, ``backends``,
    ``describe``, ``rebuilds``...) works unchanged because the remote
    pools speak the worker-pool surface.
    """

    def __init__(self, lanes: Sequence[RemoteLane],
                 depth: int = DEFAULT_DEPTH,
                 connect_timeout_s: float = 5.0,
                 request_timeout_s: float = 120.0) -> None:
        """Bind one :class:`RemoteLanePool` (of *depth*) per lane."""
        if not lanes:
            raise ServiceError("shard registry needs at least one lane")
        self.executors = tuple(lanes)
        self._pools: dict[str, RemoteLanePool] = {}
        self._pool_of: dict[str, str] = {}
        for lane in self.executors:
            self._pools[lane.name] = RemoteLanePool(
                lane.host, lane.port, depth=depth, name=lane.name,
                connect_timeout_s=connect_timeout_s,
                request_timeout_s=request_timeout_s)
            self._pool_of[lane.name] = lane.name
        self._closed = False
        self._failover_lock = threading.Lock()
        self._failover_cursor = 0

    def failover_pool(self, lane_name: str) -> "RemoteLanePool | None":
        """A sibling host's pool for redispatch after *lane_name*
        failed a request (round-robin over the others; None when this
        is the only host)."""
        others = [name for name in self._pool_of if name != lane_name]
        if not others:
            return None
        with self._failover_lock:
            cursor = self._failover_cursor
            self._failover_cursor += 1
        return self._pools[others[cursor % len(others)]]

    def hosts_snapshot(self,
                       breakers: LaneBreakerBoard | None = None) -> dict:
        """Per-host wire/health counters, plus each lane's breaker
        state when a board is given (the ``per_host`` stats section)."""
        snapshot = {}
        for lane in self.executors:
            entry = self._pools[lane.name].snapshot()
            if breakers is not None:
                entry["breaker"] = breakers.state(lane.name)
            snapshot[lane.name] = entry
        return snapshot


class ShardedDecodeSession(DecodeSession):
    """The front tier: a :class:`~repro.service.session.DecodeSession`
    whose scheduler lanes are remote worker hosts.

    Placement is the same Eq 5/6 + LPT machinery as a local lane-bound
    session; observed remote wall time folds into the per-lane EWMA
    feedback, connection failures fail over to surviving hosts and
    trip the lane's breaker (half-open canary re-admits a recovered
    host with one probe request).  Images no lane prices finitely
    (progressive, grayscale, exotic sampling — and every image once
    all hosts are down) decode on the session's local fallback pool.

    Fan-out stays host-side: the front tier ships whole images
    (``split_dominant=False, speculative=False`` in its scheduler) and
    each host's own session decides any segment/speculative split.
    """

    def __init__(self, hosts: "str | Iterable[Any]",
                 policy: str = "model", depth: int = DEFAULT_DEPTH,
                 breakers: LaneBreakerBoard | None = None,
                 platform: "object | None" = None,
                 connect_timeout_s: float = 5.0,
                 request_timeout_s: float = 120.0,
                 **session_kwargs: Any) -> None:
        """Build remote lanes + shard registry, then the session over
        them.  *hosts* is ``"host:port,..."`` (or pairs); remaining
        keywords are :class:`~repro.service.session.DecodeSession`'s.
        """
        lanes = remote_executors(hosts, platform=platform)
        registry = ShardRegistry(
            lanes, depth=depth, connect_timeout_s=connect_timeout_s,
            request_timeout_s=request_timeout_s)
        scheduler = ModelScheduler(
            policy=policy, executors=lanes, split_dominant=False,
            speculative=False, breakers=breakers)
        session_kwargs.setdefault("backend", "serial")
        session_kwargs.setdefault("workers", 1)
        try:
            super().__init__(scheduler=scheduler, lane_pools=registry,
                             **session_kwargs)
        except BaseException:
            registry.close()
            raise
        self._shard_registry = registry

    @property
    def hosts(self) -> tuple[str, ...]:
        """Endpoints this front tier shards across."""
        return tuple(pool.endpoint
                     for pool in self._shard_registry.pools.values())

    def close(self, drain: bool = True) -> None:
        """Close the session, then the registry's host links."""
        try:
            super().close(drain=drain)
        finally:
            self._shard_registry.close()
