"""Batched multi-image decoding: :class:`BatchDecoder` and
:class:`DecodeService`.

The paper keeps one image's Huffman decode sequential and fills the
hardware with the *pixel* stages; a decode service amortizes the other
way too — across images.  :class:`BatchDecoder` fans a batch of JPEG
requests out over a :class:`~repro.service.workers.WorkerPool`:

- one task per image (the common case), each running the destuffing
  prescan + fused fast-path entropy decode and the numpy pixel stages;
- or, when an image carries restart markers (DRI) and the batch alone
  cannot fill the pool, one task per *restart segment*
  (:func:`repro.jpeg.parallel_huffman.decode_segment_coefficients`),
  merged back into a whole-image coefficient grid and finished through
  :func:`repro.jpeg.decoder.pixels_from_coefficients`;
- or, for *marker-free* scans (DRI=0) under the same underfilled-pool
  condition, one task per *speculative chunk*
  (:mod:`repro.jpeg.speculative`): optimistic decoders started at
  guessed byte offsets, stitched back by bit-position convergence with
  per-chunk sequential repair of misspeculated gaps — bit-identical to
  the sequential oracle either way.

Per image, requests choose the entropy engine (``fast``/``reference``),
the decode mode (``reference`` = the real sequential pixel path, or any
:class:`~repro.core.modes.DecodeMode` value to run a simulated
heterogeneous executor), and the platform.  Failures are isolated: a
corrupt JPEG fails its own :class:`ImageResult` and never the batch.

:class:`DecodeService` is the pull-driven long-running shape
(`repro serve-batch`): a bounded
:class:`~repro.service.queue.SubmissionQueue` with backpressure and
cumulative statistics, kept as a thin compatibility facade over the
futures-based :class:`~repro.service.session.DecodeSession` (which adds
per-request handles and a background batch-forming pump — prefer it in
new code).
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field, replace
from time import perf_counter, sleep
from typing import Any, Sequence

import numpy as np

from ..errors import EntropyError, ReproError, ServiceError
from ..jpeg.decoder import (
    DecodeOptions,
    component_tables_from_info,
    decode_jpeg,
    pixels_from_coefficients,
)
from ..jpeg.blocks import ImageGeometry
from ..jpeg.entropy import CoefficientBuffers, ComponentTables
from ..jpeg.markers import JpegImageInfo, parse_jpeg
from ..jpeg.fast_entropy import ScanPrescan, destuff_scan
from ..jpeg.parallel_huffman import (
    RestartSegment,
    decode_segment_coefficients,
    scatter_segment,
    segment_plane_nbytes,
    split_restart_segments,
)
from ..jpeg.speculative import (
    DEFAULT_OVERLAP_BYTES,
    ChunkTrace,
    SpeculativeChunk,
    chunk_mcu_budget,
    decode_speculative_chunk,
    make_repairer,
    plan_chunks,
    speculative_eligible,
    stitch_chunks,
    _sequential as _decode_sequential_prescanned,
)
from .faults import FaultDirective, FaultPlan, apply_dispatch_fault
from .obs import (
    SpanRecord,
    TraceContext,
    child_span,
    drain_worker_spans,
    make_span,
    record_worker_span,
)
from .queue import SubmissionQueue
from .scheduler import BatchSchedule, ModelScheduler
from .stats import BatchStats, WorkSpan
from .transport import (
    SHM_MIN_BYTES,
    PlaneArena,
    PlaneRef,
    PlaneSlot,
    packed_nbytes,
    peek_dimensions,
    publish_plane,
    publish_planes,
    resolve_transport,
)
from .workers import WorkerPool, worker_name

#: The three load-shedding priority classes (higher = more important).
PRIORITY_LOW, PRIORITY_NORMAL, PRIORITY_HIGH = 0, 1, 2

#: Named spellings accepted by :func:`parse_priority` (and the HTTP
#: ``X-Priority`` header).
PRIORITIES = {"low": PRIORITY_LOW, "normal": PRIORITY_NORMAL,
              "high": PRIORITY_HIGH}


def parse_priority(value: "str | int") -> int:
    """Normalize a priority spelling — ``"low"``/``"normal"``/``"high"``
    or a non-negative integer (as int or digit string) — to its class
    number; raises :class:`~repro.errors.ServiceError` otherwise."""
    if isinstance(value, bool):
        raise ServiceError(f"invalid priority {value!r} "
                           f"(want low/normal/high or an integer >= 0)")
    if isinstance(value, int):
        priority = value
    else:
        text = str(value).strip().lower()
        if text in PRIORITIES:
            return PRIORITIES[text]
        try:
            priority = int(text)
        except ValueError:
            raise ServiceError(
                f"invalid priority {value!r} "
                f"(want low/normal/high or an integer >= 0)")
    if priority < 0:
        raise ServiceError(f"priority must be >= 0, got {priority}")
    return priority


@dataclass
class ImageRequest:
    """One image to decode, with its per-image knobs."""

    #: Raw JFIF bytes.
    data: bytes
    #: Caller-chosen identity, echoed on the result (assigned by the
    #: service when submitted as raw bytes).
    request_id: Any = None
    #: Huffman decode path: ``"fast"`` (fused tables) or ``"reference"``.
    entropy_engine: str = "fast"
    #: ``"reference"`` runs the real sequential pixel path;
    #: any :class:`~repro.core.modes.DecodeMode` value (``"simd"``,
    #: ``"gpu"``, ``"pipeline"``, ``"sps"``, ``"pps"``, ``"auto"``)
    #: runs the corresponding simulated heterogeneous executor.
    mode: str = "reference"
    #: Platform name for executor modes (ignored by ``"reference"``).
    platform: str = "GTX 560"
    #: IDCT method for the reference pixel path.
    idct_method: str = "aan"
    #: Fancy (triangular) chroma upsampling for the reference path.
    fancy_upsampling: bool = True
    #: Restart-segment fan-out: ``True`` forces it (where DRI permits),
    #: ``False`` forbids it, ``None`` lets the batch decoder decide
    #: (split only when the batch alone cannot fill the worker pool).
    split_segments: bool | None = None
    #: Speculative chunk fan-out for marker-free scans: ``True`` forces
    #: it (where eligibility permits — DRI=0, fast engine, reference
    #: mode), ``False`` forbids it, ``None`` defers to the batch
    #: decoder's ``speculative`` policy knob.
    speculative: bool | None = None
    #: Relative deadline in milliseconds from submission; ``None``
    #: means no deadline.  A request whose deadline passes before its
    #: decode starts is shed with
    #: :class:`~repro.errors.DeadlineExceededError` (HTTP 504) instead
    #: of being decoded (enforced by the session's batch forming).
    deadline_ms: float | None = None
    #: Best-effort decode of hostile bytes: instead of ``ok=False`` on a
    #: corrupt scan, return the pixels decoded before the failure with
    #: :attr:`ImageResult.error_regions` marking the damage.  Salvage
    #: requests decode whole-image on the reference path (no segment or
    #: speculative fan-out — the error map needs one decoder's view).
    salvage: bool = False
    #: Load-shedding priority class: 0 = low, 1 = normal (default),
    #: 2 = high.  Under overload the session sheds low classes first
    #: (each class only admits into a fraction of the queue; see
    #: :data:`repro.service.session.DEFAULT_SHED_FRACTIONS`) and batch
    #: forming orders higher classes first at equal deadlines.
    priority: int = PRIORITY_NORMAL
    #: Tracing context (PR 10): set by ``DecodeSession.submit`` when
    #: the request is sampled for tracing.  ``None`` (the default)
    #: keeps every observability hook dormant — the entire tracing
    #: layer hangs off this single attribute check.
    trace: TraceContext | None = None


@dataclass
class ImageResult:
    """Outcome of one image's decode inside a batch."""

    request_id: Any
    ok: bool
    rgb: np.ndarray | None = None
    width: int = 0
    height: int = 0
    #: Exception class name when ``ok`` is False (e.g. "JpegFormatError").
    error_type: str | None = None
    #: Human-readable failure message when ``ok`` is False.
    error: str | None = None
    #: Number of independently decoded restart segments or speculative
    #: chunks (1 = whole scan).
    segments: int = 1
    #: True when the image's coefficients came from the *stitched*
    #: speculative chunk fan-out (False for the whole-scan fallback —
    #: the result is bit-identical either way, this records which path
    #: produced it).
    speculative: bool = False
    #: Speculative chunk boundaries that failed to converge and were
    #: healed by sequential gap repair (0 on a clean stitch).
    misspeculated: int = 0
    #: Simulated executor time in microseconds (executor modes only).
    simulated_us: float | None = None
    #: Submit-to-completion latency, seconds (filled by the batch loop).
    latency_s: float = 0.0
    #: Worker busy spans that produced this image (utilization input).
    spans: list[WorkSpan] = field(default_factory=list)
    #: Shared-memory descriptor of the decoded pixels while they are in
    #: transit (worker → parent); the gather loop materializes
    #: :attr:`rgb` from it and clears it before the result escapes.
    plane: PlaneRef | None = None
    #: Real worker busy time in microseconds (sum of spans) — the
    #: wall-clock observation lane-bound scheduling feeds back into the
    #: scheduler, as opposed to the model-world :attr:`simulated_us`.
    wall_us: float | None = None
    #: Decode attempts this image consumed (> 1 after a worker-crash
    #: retry; decode is pure, so a retried success is bit-identical).
    attempts: int = 1
    #: True when ``ok=False`` came from infrastructure (a dead worker
    #: after the retry budget) rather than the image's own bytes — the
    #: failure class lane circuit breakers count, since a corrupt JPEG
    #: fails on *any* lane but a crashing lane fails every image.
    infra_failure: bool = False
    #: True when the image was redispatched onto a *different* pool
    #: than its scheduled lane (a remote host failed and a sibling
    #: absorbed the work).  Such results are excluded from the original
    #: lane's feedback and breaker credit — the lane that was priced is
    #: not the lane that decoded.
    failed_over: bool = False
    #: True when salvage mode recovered this image from corrupt bytes
    #: (``ok`` stays True; the pixels are best-effort).
    salvaged: bool = False
    #: Salvage damage map: boolean ``(mcu_rows, mcus_per_row)`` grid,
    #: True where decoding failed.  None for clean decodes and
    #: non-salvage requests.
    error_regions: np.ndarray | None = None
    #: Canonical decode errors salvage mode recovered from (one per
    #: failed scan), empty otherwise.
    salvage_errors: list[str] = field(default_factory=list)
    #: Trace spans for this image (PR 10): worker-side stage spans
    #: shipped back piggybacked on the result, plus parent-side
    #: schedule/attempt spans.  Empty when the request was not traced.
    trace_spans: list[SpanRecord] = field(default_factory=list)


@dataclass
class BatchResult:
    """All results of one batch (request order) plus reduced stats."""

    results: list[ImageResult]
    stats: BatchStats
    #: The cross-image schedule this batch ran under (None when the
    #: decoder has no scheduler attached).
    schedule: BatchSchedule | None = None
    #: Lane→pool binding map when the batch ran on lane-bound executor
    #: pools (:meth:`~repro.service.executors.ExecutorRegistry.describe`).
    lane_pools: dict | None = None
    #: Result transport the batch used (``"shm"`` or ``"pickle"``).
    transport: str = "pickle"
    #: Tasks re-dispatched after an infrastructure failure (dead
    #: worker) inside this batch.
    retries: int = 0
    #: Per-lane count of *remote dispatch* infrastructure failures this
    #: batch (connection refused/lost/timeout on a remote lane pool),
    #: counted even when a failover redispatch saved every image — the
    #: scheduler charges these to the lane breakers so a dying host
    #: trips its breaker while siblings absorb its work.
    lane_failures: dict = field(default_factory=dict)

    def __iter__(self):
        """Iterate results in request order."""
        return iter(self.results)

    def __len__(self) -> int:
        """Number of images in the batch."""
        return len(self.results)

    @property
    def ok(self) -> bool:
        """True when every image in the batch decoded successfully."""
        return all(r.ok for r in self.results)


# ---------------------------------------------------------------------------
# Worker-side task functions (module-level: the process backend pickles
# them by reference).
# ---------------------------------------------------------------------------

#: Decoder stage name → Timeline glyph kind for worker stage spans.
_STAGE_KINDS = {"parse": "dispatch", "entropy": "huffman",
                "idct": "kernel", "upsample": "cpu-parallel",
                "color": "cpu-parallel", "shm_publish": "write"}


def _stage_recorder(ctx: TraceContext, resource: str):
    """A :attr:`DecodeOptions.stage_hook` that records each decode
    stage into this worker process's lock-free span ring (drained and
    shipped back on the result by the task function)."""
    def hook(stage: str, t0: float, t1: float) -> None:
        """Record one completed decoder stage as a child span."""
        record_worker_span(child_span(
            ctx, stage, resource, _STAGE_KINDS.get(stage, "dispatch"),
            t0, t1))
    return hook


def decode_image_task(request: ImageRequest,
                      slot: PlaneSlot | None = None,
                      fault: FaultDirective | None = None) -> ImageResult:
    """Decode one whole image inside a worker; never raises (except by
    injected crash faults, which model a worker that never returns).

    *Any* failure — malformed bytes, truncated scan, unsupported
    feature, unknown mode, but also the unexpected (``MemoryError``,
    numpy shape errors) — is captured on the returned
    :class:`ImageResult` so one bad image cannot poison its batch.
    Per-image isolation holds for arbitrary exceptions, not just the
    library's own.

    With a transport *slot*, the decoded pixels are written into the
    leased shared-memory segment and the result carries only a
    :class:`~repro.service.transport.PlaneRef` — nothing heavy rides
    the pickle pipe.  If publishing fails for any reason the pixels
    fall back to the pickle path rather than failing the decode.

    *fault* is an injected :class:`~repro.service.faults.FaultDirective`
    (chaos testing only): ``kill``/``delay`` apply at entry,
    ``exception`` raises inside the decode, ``shm_fail`` fails the
    publish (exercising the pickle fallback).
    """
    apply_dispatch_fault(fault)
    t0 = perf_counter()
    ctx = request.trace
    resource = worker_name()
    try:
        if fault is not None and fault.kind == "exception":
            raise RuntimeError(fault.message)
        salvaged = False
        error_regions = None
        salvage_errors: list[str] = []
        if request.mode == "reference":
            options = DecodeOptions(
                idct_method=request.idct_method,
                fancy_upsampling=request.fancy_upsampling,
                entropy_engine=request.entropy_engine,
                salvage=request.salvage,
            )
            if ctx is not None:
                options.stage_hook = _stage_recorder(ctx, resource)
            decoded = decode_jpeg(request.data, options)
            rgb, simulated_us = decoded.rgb, None
            if request.salvage:
                salvaged = decoded.salvaged
                error_regions = decoded.error_map
                salvage_errors = list(decoded.errors)
        else:
            from ..core import HeterogeneousDecoder
            from ..evaluation import platforms

            plat = {p.name: p for p in platforms.ALL_PLATFORMS}[
                request.platform]
            decoder = HeterogeneousDecoder.for_platform(
                plat, entropy_engine=request.entropy_engine,
                fancy_upsampling=request.fancy_upsampling)
            t_dec = perf_counter()
            result = decoder.decode(request.data, request.mode)
            rgb, simulated_us = result.rgb, result.total_us
            if ctx is not None:
                # Simulated-executor decodes have no per-stage hooks;
                # one span covers the whole decode, tagged with the
                # lane's mode so the Gantt still names the work.
                record_worker_span(child_span(
                    ctx, "decode", resource, "kernel",
                    t_dec, perf_counter(), mode=str(request.mode),
                    platform=str(request.platform)))
    except KeyError:
        return ImageResult(
            request_id=request.request_id, ok=False,
            error_type="KeyError",
            error=f"unknown platform {request.platform!r}",
            spans=[WorkSpan(worker_name(), t0, perf_counter())],
            trace_spans=(drain_worker_spans(ctx.trace_id)
                         if ctx is not None else []))
    except Exception as exc:  # ANY failure stays on this image's result
        return ImageResult(
            request_id=request.request_id, ok=False,
            error_type=type(exc).__name__, error=str(exc),
            spans=[WorkSpan(worker_name(), t0, perf_counter())],
            trace_spans=(drain_worker_spans(ctx.trace_id)
                         if ctx is not None else []))
    h, w = rgb.shape[:2]
    plane = None
    if slot is not None:
        try:
            if fault is not None and fault.kind == "shm_fail":
                raise ServiceError(fault.message)
            t_pub = perf_counter()
            plane = publish_plane(slot, rgb)
            if ctx is not None:
                record_worker_span(child_span(
                    ctx, "shm_publish", resource, "write",
                    t_pub, perf_counter(), nbytes=plane.nbytes))
            rgb = None
        except Exception:
            plane = None  # slot too small / segment gone: pickle instead
    return ImageResult(
        request_id=request.request_id, ok=True, rgb=rgb,
        width=w, height=h, simulated_us=simulated_us, plane=plane,
        salvaged=salvaged, error_regions=error_regions,
        salvage_errors=salvage_errors,
        spans=[WorkSpan(worker_name(), t0, perf_counter())],
        trace_spans=(drain_worker_spans(ctx.trace_id)
                     if ctx is not None else []))


def decode_segment_task(
    seg: RestartSegment,
    segment_bytes: bytes,
    geometry_args: tuple[int, int, str],
    tables: list[ComponentTables],
    entropy_engine: str,
    slot: PlaneSlot | None = None,
    fault: FaultDirective | None = None,
) -> tuple[RestartSegment, "list | tuple | None", str | None, str | None,
           WorkSpan]:
    """Decode one restart segment inside a worker; never raises (except
    by injected crash faults).

    Returns ``(segment, payload, error_type, error, span)`` — *payload*
    is None on failure, the list of coefficient planes on the pickle
    path, or a tuple of :class:`~repro.service.transport.PlaneRef`
    descriptors when a transport *slot* was leased (the planes are
    packed into the shared segment instead of riding the result pipe).
    *geometry_args* is the pickled-down ``(width, height, mode)`` of
    the full image.  Any exception class is captured — per-segment
    isolation mirrors :func:`decode_image_task`.  *fault* injects
    chaos the same way as for whole-image tasks.
    """
    apply_dispatch_fault(fault)
    t0 = perf_counter()
    try:
        if fault is not None and fault.kind == "exception":
            raise RuntimeError(fault.message)
        geometry = ImageGeometry(*geometry_args)
        planes = decode_segment_coefficients(
            seg, segment_bytes, geometry, tables, entropy_engine)
    except Exception as exc:  # ANY failure stays on this segment
        return (seg, None, type(exc).__name__, str(exc),
                WorkSpan(worker_name(), t0, perf_counter()))
    payload: "list | tuple" = planes
    if slot is not None:
        try:
            if fault is not None and fault.kind == "shm_fail":
                raise ServiceError(fault.message)
            payload = publish_planes(slot, planes)
        except Exception:
            payload = planes  # fall back to pickling the planes
    return seg, payload, None, None, WorkSpan(worker_name(), t0,
                                              perf_counter())


def decode_speculative_chunk_task(
    chunk: SpeculativeChunk,
    slice_bytes: bytes,
    geometry_args: tuple[int, int, str],
    tables: list[ComponentTables],
    terminator: int | None,
    slot: PlaneSlot | None = None,
    fault: FaultDirective | None = None,
) -> tuple[SpeculativeChunk, "ChunkTrace | None", "list | tuple | None",
           str | None, str | None, WorkSpan]:
    """Speculatively decode one chunk inside a worker; never raises
    (except by injected crash faults).

    Returns ``(chunk, trace, payload, error_type, error, span)``.
    Decode errors inside the chunk are *not* task errors — the
    optimistic decoder records them on the trace and the stitcher
    decides whether they matter (misspeculation repairs sequentially,
    a hostile stream falls back to the oracle).  *trace* is None only
    when the task itself failed structurally (then ``error_type`` is
    set).  *payload* carries the trace's coefficient planes: a list on
    the pickle path or :class:`~repro.service.transport.PlaneRef`
    descriptors when a transport *slot* was leased — the trace rides
    the pickle pipe with ``planes`` stripped either way, and the
    gather loop reattaches them.
    """
    apply_dispatch_fault(fault)
    t0 = perf_counter()
    try:
        if fault is not None and fault.kind == "exception":
            raise RuntimeError(fault.message)
        trace = decode_speculative_chunk(
            chunk, slice_bytes, geometry_args, tables, "fast", terminator)
    except Exception as exc:  # ANY failure stays on this chunk
        return (chunk, None, None, type(exc).__name__, str(exc),
                WorkSpan(worker_name(), t0, perf_counter()))
    payload: "list | tuple" = trace.planes
    if slot is not None:
        try:
            if fault is not None and fault.kind == "shm_fail":
                raise ServiceError(fault.message)
            payload = publish_planes(slot, trace.planes)
        except Exception:
            payload = trace.planes  # fall back to pickling the planes
    trace.planes = None
    return (chunk, trace, payload, None, None,
            WorkSpan(worker_name(), t0, perf_counter()))


# ---------------------------------------------------------------------------
# Batch orchestration.
# ---------------------------------------------------------------------------

@dataclass
class _SplitJob:
    """Book-keeping for one image being decoded segment-by-segment."""

    index: int
    request: ImageRequest
    info: JpegImageInfo
    pending: int
    planes_by_seg: dict[int, tuple[RestartSegment, list[np.ndarray]]] = \
        field(default_factory=dict)
    spans: list[WorkSpan] = field(default_factory=list)
    error_type: str | None = None
    error: str | None = None
    #: Transport slots whose planes are still referenced (released only
    #: after the merge copies them out).
    slots: list[PlaneSlot] = field(default_factory=list)
    #: True when a segment failed on infrastructure (worker crash past
    #: the retry budget) rather than the scan bytes.
    infra: bool = False
    #: Max dispatch attempts any of this image's segments consumed.
    attempts: int = 1


@dataclass
class _SpecJob:
    """Book-keeping for one marker-free image decoded speculatively."""

    index: int
    request: ImageRequest
    info: JpegImageInfo
    #: The destuffed scan — sliced for the chunk tasks, and the substrate
    #: the stitcher's gap repair (and the whole-scan fallback) decode.
    prescan: ScanPrescan
    chunks: list[SpeculativeChunk]
    tables: list[ComponentTables]
    pending: int
    #: Traces by chunk index; None marks a chunk whose task failed or
    #: whose worker crashed past the retry budget — the stitcher treats
    #: both as misspeculation (repair or fall back), never as an image
    #: error.
    traces_by_chunk: dict[int, "ChunkTrace | None"] = \
        field(default_factory=dict)
    spans: list[WorkSpan] = field(default_factory=list)
    #: Transport slots whose planes are still referenced (released only
    #: after the stitch copies them out).
    slots: list[PlaneSlot] = field(default_factory=list)
    #: True when any chunk died on infrastructure past the retry budget
    #: (reported on the result only if the image ultimately fails).
    infra: bool = False
    #: Max dispatch attempts any of this image's chunks consumed.
    attempts: int = 1


@dataclass
class _InFlight:
    """Book-keeping for one dispatched task: everything the gather loop
    needs to requeue it after its worker dies (a fresh slot is leased on
    redispatch — the old one is quarantined, the dead worker may still
    hold a view into it)."""

    #: ``"whole"``, ``"segment"`` or ``"spec"``.
    kind: str
    #: Batch index of the image this task belongs to.
    index: int
    #: Pool the task ran on (redispatch targets the same, healed, pool).
    pool: WorkerPool
    #: True when the task crossed a process boundary (pickle accounting).
    piped: bool
    #: Dispatch attempts so far (1 = first try).
    attempts: int
    #: Shared-memory slot leased to this dispatch, if any.
    slot: PlaneSlot | None
    #: Scheduler lane the task was placed on (fault-plan targeting).
    lane: str | None
    #: Segment redispatch arguments
    #: ``(seg, seg_bytes, geo_args, tables, engine, nbytes)`` — or, for
    #: speculative chunks, ``(chunk, chunk_bytes, geo_args, tables,
    #: terminator, nbytes)``; empty for whole-image tasks (those
    #: redispatch from ``requests[index]``).
    args: tuple = ()
    #: True when this dispatch already runs on a failover pool instead
    #: of its scheduled lane's pool (propagated onto the result).
    failed_over: bool = False
    #: Attempt trace context (``request.trace.child()``) when the image
    #: is traced — each dispatch attempt records under its own span so
    #: redispatches appear as sibling attempt spans.
    ctx: TraceContext | None = None
    #: ``perf_counter`` at dispatch: the attempt span's start.
    dispatched_at: float = 0.0


class BatchDecoder:
    """Decode batches of JPEG requests across a worker pool."""

    def __init__(self, workers: int | None = None,
                 backend: str | None = None,
                 defaults: ImageRequest | None = None,
                 scheduler: ModelScheduler | str | None = None,
                 transport: str = "auto",
                 lane_pools: "object | str | bool | None" = None,
                 shm_min_bytes: int = SHM_MIN_BYTES,
                 retry_budget: int = 2,
                 retry_backoff_s: float = 0.01,
                 faults: FaultPlan | None = None,
                 speculative: str = "auto",
                 speculative_chunks: int | None = None,
                 speculative_overlap: int = DEFAULT_OVERLAP_BYTES) -> None:
        """Create the pool (see :class:`~repro.service.workers.WorkerPool`
        for backend semantics).  *defaults* seeds the per-image knobs
        applied when a request is submitted as raw bytes.

        *scheduler* enables cross-image batch scheduling: a
        :class:`~repro.service.scheduler.ModelScheduler`, or a policy
        name (``"model"``/``"roundrobin"``) to build one with the
        default lane set.  A scheduled batch overrides each request's
        ``mode``/``platform``/``split_segments`` with its lane placement.

        *transport* picks how process-pool workers return decoded
        planes: ``"shm"`` (shared-memory segments + descriptors),
        ``"pickle"`` (the classic result pipe), or ``"auto"`` (shm
        wherever a process pool and working POSIX shared memory exist,
        pickle everywhere else — serial/thread backends always resolve
        to pickle since nothing crosses a process boundary).
        *shm_min_bytes* keeps payloads below that size on the pickle
        path (segment churn costs more than pickling a few KB; tests
        pass 0 to force shm for every task).

        *lane_pools* binds scheduler lanes to dedicated pools: pass an
        :class:`~repro.service.executors.ExecutorRegistry`, a layout
        spec string (``"gpu=1,simd=3"`` / ``"auto"``), or ``True`` for
        the default layout.  Requires a scheduler; placed images then
        dispatch to their lane's own pool and the scheduler's feedback
        sees real per-lane wall-clock times.

        *retry_budget* bounds how many times one task is re-dispatched
        after an *infrastructure* failure (its worker died and the pool
        was rebuilt) — decode is pure, so a retried decode is
        bit-identical.  Decode errors (``ok=False`` results) are never
        retried: they are deterministic properties of the bytes.
        *retry_backoff_s* is the base of the exponential back-off slept
        before each re-dispatch.  *faults* attaches a
        :class:`~repro.service.faults.FaultPlan` for chaos testing.

        *speculative* governs the marker-free fan-out
        (:mod:`repro.jpeg.speculative`): ``"auto"`` (default) splits a
        DRI=0 scan into speculative chunks under the same
        underfilled-pool condition as restart segments, ``"on"`` makes
        every eligible image a candidate regardless of batch size, and
        ``"off"`` disables the path (a per-request
        :attr:`ImageRequest.speculative` overrides the policy either
        way).  *speculative_chunks* fixes the chunk count (default: the
        dispatching pool's worker count); *speculative_overlap* is the
        convergence-window size in payload bytes.
        """
        from .executors import ExecutorRegistry
        from .transport import TRANSPORTS

        if speculative not in ("auto", "on", "off"):
            raise ServiceError(
                f"speculative must be 'auto', 'on' or 'off', "
                f"got {speculative!r}")
        if speculative_chunks is not None and speculative_chunks < 1:
            raise ServiceError(
                f"speculative_chunks must be >= 1, got {speculative_chunks}")
        self.speculative = speculative
        self.speculative_chunks = speculative_chunks
        self.speculative_overlap = speculative_overlap

        # Validate everything cheap *before* any pool exists, so a
        # bad configuration never leaks live worker processes.
        if transport not in TRANSPORTS:
            raise ServiceError(
                f"unknown transport {transport!r} "
                f"(choose from {list(TRANSPORTS)})")
        if retry_budget < 0:
            raise ServiceError(
                f"retry_budget must be >= 0, got {retry_budget}")
        if retry_backoff_s < 0:
            raise ServiceError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}")
        self.retry_budget = retry_budget
        self.retry_backoff_s = retry_backoff_s
        self.faults = faults
        #: Cumulative infrastructure-failure re-dispatches, all batches.
        self.retries_total = 0
        if isinstance(scheduler, str):
            scheduler = ModelScheduler(policy=scheduler)
        self.scheduler = scheduler
        if lane_pools not in (None, False, "none") and scheduler is None:
            raise ServiceError(
                "lane_pools requires a scheduler (lane placements "
                "come from ModelScheduler.plan)")
        self.defaults = defaults or ImageRequest(data=b"")
        self.pool = WorkerPool(workers=workers, backend=backend)
        if lane_pools in (None, False, "none"):
            self.registry = None
            self._owns_registry = False
        elif isinstance(lane_pools, ExecutorRegistry):
            # Caller-built registry: adopted for dispatch, but its
            # lifecycle stays with the caller (close() leaves it open,
            # mirroring DecodeHTTPServer's session ownership rule).
            self.registry = lane_pools
            self._owns_registry = False
        else:
            layout = None if lane_pools is True else lane_pools
            try:
                self.registry = ExecutorRegistry(
                    self.scheduler.executors, layout=layout, backend=backend)
            except BaseException:
                self.pool.close()
                raise
            self._owns_registry = True
        backends = {self.pool.backend}
        if self.registry is not None:
            backends |= self.registry.backends
        self.transport = resolve_transport(transport, backends)
        self.arena = PlaneArena() if self.transport == "shm" else None
        self.shm_min_bytes = shm_min_bytes

    # -- request normalization -----------------------------------------

    def _normalize(self, items: Sequence[bytes | ImageRequest]
                   ) -> list[ImageRequest]:
        """Coerce raw bytes to requests and fill in missing ids."""
        requests = []
        for i, item in enumerate(items):
            if isinstance(item, ImageRequest):
                req = item
            else:
                req = replace(self.defaults, data=bytes(item))
            if req.request_id is None:
                req = replace(req, request_id=i)
            requests.append(req)
        return requests

    def _split_candidate(self, req: ImageRequest, n_requests: int) -> bool:
        """Parse-free preconditions for restart-segment fan-out.

        Checked *before* any header parse so that the common throughput
        case (a batch large enough to fill the pool with whole-image
        tasks) pays zero serialized parent-side work per image — the
        worker owns the parse.  Executor modes never split (they consume
        the scan in-order themselves).
        """
        if req.mode != "reference" or req.split_segments is False \
                or req.salvage:
            return False
        if req.split_segments is True:
            return True
        # auto: split only when whole-image tasks cannot fill the pool.
        return (self.pool.backend != "serial"
                and n_requests < self.pool.workers)

    def _speculative_candidate(self, req: ImageRequest,
                               n_requests: int) -> bool:
        """Parse-free preconditions for speculative chunk fan-out.

        Mirrors :meth:`_split_candidate` for marker-free scans: only
        the reference pixel path with the fast engine qualifies (the
        speculative decoder needs exact bit positions), the per-request
        knob overrides, and the decoder-level policy decides the rest —
        ``"auto"`` fans out only when whole-image tasks cannot fill the
        pool.  Actual eligibility (DRI=0, no stray RSTn) is checked
        after the parse.
        """
        if req.mode != "reference" or req.entropy_engine != "fast" \
                or req.salvage:
            return False
        if req.speculative is False:
            return False
        if req.speculative is True:
            return True
        if self.speculative == "off":
            return False
        if self.speculative == "on":
            return self.pool.backend != "serial"
        return (self.pool.backend != "serial"
                and n_requests < self.pool.workers)

    # -- the batch loop -------------------------------------------------

    # -- transport helpers ---------------------------------------------

    def _lease_image_slot(self, req: ImageRequest,
                          pool: WorkerPool) -> PlaneSlot | None:
        """Lease a shm slot sized for *req*'s decoded pixels, if the
        transport applies to *pool* (process backend + shm resolved).
        A failed header peek skips the lease — the worker then reports
        the precise decode error over the pickle path."""
        if self.arena is None or pool.backend != "process":
            return None
        dims = peek_dimensions(req.data)
        if dims is None:
            return None
        w, h = dims
        if w * h * 3 < self.shm_min_bytes:
            return None
        try:
            return self.arena.lease(w * h * 3)
        except ServiceError:
            return None

    def _lease_segment_slot(self, nbytes: int,
                            pool: WorkerPool) -> PlaneSlot | None:
        """Lease a shm slot for one restart segment's packed planes."""
        if self.arena is None or pool.backend != "process" or nbytes <= 0:
            return None
        if nbytes < self.shm_min_bytes:
            return None
        try:
            return self.arena.lease(nbytes)
        except ServiceError:
            return None

    def _release_slot(self, slot: PlaneSlot | None,
                      outstanding: dict[str, PlaneSlot]) -> None:
        """Return one slot to the arena ring and the tracking map."""
        if slot is None or self.arena is None:
            return
        outstanding.pop(slot.name, None)
        self.arena.release(slot)

    def _quarantine_slot(self, slot: PlaneSlot | None,
                         outstanding: dict[str, PlaneSlot]) -> None:
        """Unlink a failed dispatch's slot without recycling it: the
        dead (or killed) worker may have been mid-memcpy into the
        segment, so the name must never be reused."""
        if slot is None or self.arena is None:
            return
        outstanding.pop(slot.name, None)
        self.arena.discard(slot)

    def _next_fault(self, lane: str | None) -> FaultDirective | None:
        """Consult the attached fault plan for this dispatch (None when
        no plan is attached or the plan stays quiet)."""
        if self.faults is None:
            return None
        return self.faults.next_directive(lane)

    @property
    def rebuilds(self) -> int:
        """Worker-pool rebuilds across the default pool and every
        lane-bound pool — the self-healing activity counter."""
        total = self.pool.rebuilds
        if self.registry is not None:
            total += sum(p.rebuilds for p in self.registry.pools.values())
        return total

    def _materialize(self, result: ImageResult,
                     outstanding: dict[str, PlaneSlot]) -> int:
        """Turn a transported :class:`PlaneRef` back into ``rgb``.

        Returns the bytes that crossed shared memory (0 on the pickle
        path); always leaves the result descriptor-free so nothing
        downstream can observe a recycled segment.
        """
        ref = result.plane
        if ref is None:
            return 0
        result.rgb = self.arena.resolve(ref, copy=True)
        result.plane = None
        self._release_slot(outstanding.get(ref.segment), outstanding)
        return ref.nbytes

    # -- the batch loop (continued) ------------------------------------

    def decode_batch(self, items: Sequence[bytes | ImageRequest]
                     ) -> BatchResult:
        """Decode *items* concurrently; results come back in order.

        Raises only on infrastructure failure (closed pool); per-image
        decode errors are reported on the individual results.

        With a scheduler attached, the batch is first priced and placed
        (:meth:`~repro.service.scheduler.ModelScheduler.plan`) and each
        request rewritten to run on its assigned lane; the resulting
        :class:`~repro.service.scheduler.BatchSchedule` rides back on
        ``BatchResult.schedule``.  With lane-bound pools
        (``lane_pools=``), each placed image dispatches to its lane's
        own pool, the schedule is flagged ``wall_time`` and per-image
        ``wall_us`` carries the real heterogeneous execution time the
        scheduler's feedback consumes.  With ``transport="shm"``,
        process-pool workers return shared-memory descriptors and the
        pixels are materialized here; every leased segment is released
        (or unlinked at :meth:`close`) even when a worker dies
        mid-batch.
        """
        requests = self._normalize(items)
        schedule = None
        lane_by_index: dict[int, str] = {}
        #: Parent-side spans per batch index for traced requests
        #: (schedule placement, dispatch attempts, breaker exclusions).
        trace_parent: dict[int, list[SpanRecord]] = {}
        traced = [i for i, r in enumerate(requests) if r.trace is not None]
        if self.scheduler is not None and requests:
            t_plan0 = perf_counter()
            schedule = self.scheduler.plan(requests)
            t_plan1 = perf_counter()
            requests = self.scheduler.apply(requests, schedule)
            if traced:
                lane_of = {a.index: a.executor.name
                           for a in schedule.assignments
                           if a.executor is not None}
                for i in traced:
                    root = requests[i].trace
                    spans = trace_parent.setdefault(i, [])
                    spans.append(child_span(
                        root, "schedule", "scheduler", "dispatch",
                        t_plan0, t_plan1, lane=lane_of.get(i, "")))
                    for lane in getattr(schedule, "excluded", ()):
                        spans.append(child_span(
                            root, "lane_excluded", lane, "dispatch",
                            t_plan1, t_plan1, lane=lane,
                            reason="breaker_open"))
            if self.registry is not None:
                schedule.wall_time = True
                lane_by_index = {
                    a.index: a.executor.name
                    for a in schedule.assignments if a.executor is not None}
        t0 = perf_counter()
        results: list[ImageResult | None] = [None] * len(requests)
        pending: dict[Any, _InFlight] = {}
        split_jobs: dict[int, _SplitJob] = {}
        spec_jobs: dict[int, _SpecJob] = {}
        #: Pools that actually received work this batch — the honest
        #: utilization denominator (with lane-bound pools the default
        #: pool often sits idle by construction).
        pools_used: set[int] = set()
        #: Slots leased to in-flight tasks, by segment name — the
        #: cleanup authority when futures fail or the dispatch aborts.
        outstanding: dict[str, PlaneSlot] = {}
        bytes_shm = 0
        bytes_pickle = 0
        retries = 0
        lane_failures: dict[str, int] = {}

        def submit_with_slot(pool, fn, *args, slot=None, fault=None):
            """Submit, guaranteeing the slot is reclaimed on failure."""
            if slot is not None:
                outstanding[slot.name] = slot
            try:
                fut = pool.submit(fn, *args, slot, fault)
            except BaseException:
                self._release_slot(slot, outstanding)
                raise
            pools_used.add(id(pool))
            return fut

        def dispatch_whole(i, pool, lane, attempts=1, failed_over=False):
            """(Re)dispatch one whole-image task; registers in-flight."""
            req = requests[i]
            ctx = None
            t_disp = perf_counter()
            if req.trace is not None:
                ctx = req.trace.child()
                req = replace(req, trace=ctx)
            slot = self._lease_image_slot(req, pool)
            fut = submit_with_slot(pool, decode_image_task, req,
                                   slot=slot, fault=self._next_fault(lane))
            pending[fut] = _InFlight(
                "whole", i, pool, pool.backend == "process",
                attempts, slot, lane, failed_over=failed_over,
                ctx=ctx, dispatched_at=t_disp)

        def dispatch_segment(i, pool, lane, seg, seg_bytes, geo_args,
                             tables, engine, nbytes, attempts=1):
            """(Re)dispatch one restart-segment task."""
            root = requests[i].trace
            ctx = root.child() if root is not None else None
            t_disp = perf_counter()
            slot = self._lease_segment_slot(nbytes, pool)
            fut = submit_with_slot(pool, decode_segment_task, seg,
                                   seg_bytes, geo_args, tables, engine,
                                   slot=slot, fault=self._next_fault(lane))
            pending[fut] = _InFlight(
                "segment", i, pool, pool.backend == "process",
                attempts, slot, lane,
                (seg, seg_bytes, geo_args, tables, engine, nbytes),
                ctx=ctx, dispatched_at=t_disp)

        def dispatch_spec(i, pool, lane, chunk, chunk_bytes, geo_args,
                          tables, terminator, nbytes, attempts=1):
            """(Re)dispatch one speculative-chunk task."""
            root = requests[i].trace
            ctx = root.child() if root is not None else None
            t_disp = perf_counter()
            slot = self._lease_segment_slot(nbytes, pool)
            fut = submit_with_slot(pool, decode_speculative_chunk_task,
                                   chunk, chunk_bytes, geo_args, tables,
                                   terminator, slot=slot,
                                   fault=self._next_fault(lane))
            pending[fut] = _InFlight(
                "spec", i, pool, pool.backend == "process",
                attempts, slot, lane,
                (chunk, chunk_bytes, geo_args, tables, terminator, nbytes),
                ctx=ctx, dispatched_at=t_disp)

        gather_complete = False
        try:
            for i, req in enumerate(requests):
                lane = lane_by_index.get(i)
                pool = self.pool
                if lane is not None and self.registry is not None:
                    pool = self.registry.pool_for(lane) or self.pool
                split = spec = False
                scan = chunks = None
                want_split = self._split_candidate(req, len(requests))
                want_spec = self._speculative_candidate(req, len(requests))
                if pool.backend == "remote":
                    # Remote lanes ship whole images only: the host's
                    # own session decides any segment/speculative
                    # fan-out on its side of the wire.
                    want_split = want_spec = False
                if want_split or want_spec:
                    try:
                        info = parse_jpeg(req.data)
                    except (ReproError, ValueError) as exc:
                        results[i] = ImageResult(
                            request_id=req.request_id, ok=False,
                            error_type=type(exc).__name__, error=str(exc),
                            latency_s=perf_counter() - t0)
                        continue
                    # Progressive streams decode whole-image: multi-scan
                    # coefficient accumulation has no per-segment or
                    # per-chunk decomposition.
                    split = want_split and info.restart_interval > 0 \
                        and not info.progressive
                    spec = not split and want_spec \
                        and info.restart_interval == 0 \
                        and not info.progressive
                if spec:
                    try:
                        scan = destuff_scan(info.entropy_data)
                    except (ReproError, ValueError):
                        # Malformed scan structure: the whole-image
                        # worker reports the precise decode error.
                        scan = None
                    if scan is None or not speculative_eligible(
                            info.restart_interval, scan):
                        spec = False
                    else:
                        chunks = plan_chunks(
                            len(scan.payload),
                            self.speculative_chunks or pool.workers,
                            self.speculative_overlap)
                        # One chunk degenerates to the sequential decode
                        # — a whole-image task without the stitch tax.
                        spec = len(chunks) > 1
                if not split and not spec:
                    dispatch_whole(i, pool, lane)
                    continue
                geo = info.geometry
                if spec:
                    tables = component_tables_from_info(info)
                    job = _SpecJob(index=i, request=req, info=info,
                                   prescan=scan, chunks=chunks,
                                   tables=tables, pending=len(chunks))
                    spec_jobs[i] = job
                    geo_args = (geo.width, geo.height, geo.mode,
                            geo.ncomponents)
                    payload = scan.payload
                    bpms = [c.h_factor * c.v_factor
                            for c in geo.components]
                    for chunk in chunks:
                        budget = chunk_mcu_budget(chunk, geo)
                        # int16 coefficient blocks: 64 * 2 bytes each.
                        nbytes = packed_nbytes(
                            [budget * bpm * 128 for bpm in bpms])
                        dispatch_spec(
                            i, pool, lane, chunk,
                            payload[chunk.start:chunk.slice_stop],
                            geo_args, tables,
                            (scan.terminator
                             if chunk.slice_stop == len(payload) else None),
                            nbytes)
                    continue
                # Validate the marker structure before fanning out: a
                # truncated/corrupt scan has fewer RSTn boundaries than
                # the DRI interval demands, and isolated segments would
                # then zero-pad their way to silent garbage where the
                # sequential decoder raises.
                expected = -(-geo.total_mcus // info.restart_interval)
                try:
                    segments = split_restart_segments(
                        info.entropy_data, geo.total_mcus,
                        info.restart_interval)
                    if len(segments) != expected:
                        raise EntropyError(
                            f"restart marker structure inconsistent: "
                            f"expected {expected} segments, found "
                            f"{len(segments)} (truncated or corrupt scan)")
                except (ReproError, ValueError) as exc:
                    results[i] = ImageResult(
                        request_id=req.request_id, ok=False,
                        error_type=type(exc).__name__, error=str(exc),
                        latency_s=perf_counter() - t0)
                    continue
                job = _SplitJob(index=i, request=req, info=info,
                                pending=len(segments))
                split_jobs[i] = job
                tables = component_tables_from_info(info)
                geo_args = (geo.width, geo.height, geo.mode,
                        geo.ncomponents)
                plane_sizes: dict[int, int] = {}
                for seg in segments:
                    nbytes = plane_sizes.get(seg.mcu_count)
                    if nbytes is None:
                        nbytes = packed_nbytes(
                            segment_plane_nbytes(seg, geo))
                        plane_sizes[seg.mcu_count] = nbytes
                    dispatch_segment(
                        i, pool, lane, seg,
                        info.entropy_data[seg.byte_start: seg.byte_stop],
                        geo_args, tables, req.entropy_engine, nbytes)

            while pending:
                done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                for fut in done:
                    task = pending.pop(fut)
                    i = task.index
                    try:
                        payload = fut.result()
                        failure = None
                    except BaseException as exc:
                        # The task function catches everything, so a
                        # raising future means infrastructure died under
                        # it: BrokenProcessPool (worker SIGKILLed/OOMed)
                        # or an injected WorkerCrashError.
                        payload, failure = None, exc
                    if task.ctx is not None:
                        # The attempt span uses the child context's OWN
                        # identity so worker stage spans (parented on
                        # that same context) nest under it; retries of
                        # one request become sibling attempt spans under
                        # the shared request span.
                        trace_parent.setdefault(i, []).append(make_span(
                            task.ctx, "attempt",
                            task.lane or task.pool.backend, "cpu-parallel",
                            task.dispatched_at, perf_counter(),
                            attempt=task.attempts, task=task.kind,
                            outcome=("crashed" if failure is not None
                                     else "ok")))
                    if failure is not None:
                        # The dead worker may still hold a view into
                        # its slot — quarantine, never recycle.
                        self._quarantine_slot(task.slot, outstanding)
                        task.pool.heal()
                        if task.pool.backend == "remote":
                            # Charged to the lane whose pool actually
                            # failed (the failover target when the
                            # rescue dispatch failed too), and before
                            # the budget check: the lane must answer
                            # for every failed dispatch, even the one
                            # that exhausts the budget.
                            failed_lane = getattr(
                                task.pool, "name", None) or task.lane
                            if failed_lane is not None:
                                lane_failures[failed_lane] = \
                                    lane_failures.get(failed_lane, 0) + 1
                        if task.attempts <= self.retry_budget:
                            retries += 1
                            sleep(self.retry_backoff_s
                                  * (2 ** (task.attempts - 1)))
                            if task.kind == "whole":
                                pool = task.pool
                                failed_over = task.failed_over
                                if (pool.backend == "remote"
                                        and self.registry is not None):
                                    # Prefer a surviving sibling host
                                    # over hammering the one that just
                                    # failed.
                                    alt = self.registry.failover_pool(
                                        task.lane)
                                    if alt is not None:
                                        pool, failed_over = alt, True
                                dispatch_whole(i, pool, task.lane,
                                               attempts=task.attempts + 1,
                                               failed_over=failed_over)
                            elif task.kind == "spec":
                                dispatch_spec(
                                    i, task.pool, task.lane, *task.args,
                                    attempts=task.attempts + 1)
                            else:
                                dispatch_segment(
                                    i, task.pool, task.lane, *task.args,
                                    attempts=task.attempts + 1)
                            continue
                        exc_msg = (
                            f"worker crashed after {task.attempts} "
                            f"attempt(s): {type(failure).__name__}: "
                            f"{failure}")
                        if task.kind == "whole":
                            results[i] = ImageResult(
                                request_id=requests[i].request_id,
                                ok=False, error_type="WorkerCrashError",
                                error=exc_msg, infra_failure=True,
                                attempts=task.attempts,
                                failed_over=task.failed_over,
                                latency_s=perf_counter() - t0)
                        elif task.kind == "spec":
                            # A chunk lost to infrastructure is just a
                            # misspeculated chunk: the stitcher repairs
                            # the gap sequentially (or the whole scan
                            # falls back) — the image still decodes.
                            job = spec_jobs[i]
                            job.infra = True
                            job.attempts = max(job.attempts, task.attempts)
                            job.traces_by_chunk[task.args[0].index] = None
                            job.pending -= 1
                            if job.pending == 0:
                                results[i] = self._finish_speculative(job)
                                for slot in job.slots:
                                    self._release_slot(slot, outstanding)
                                results[i].latency_s = perf_counter() - t0
                        else:
                            job = split_jobs[i]
                            job.error_type = (job.error_type
                                              or "WorkerCrashError")
                            job.error = job.error or exc_msg
                            job.infra = True
                            job.attempts = max(job.attempts, task.attempts)
                            job.pending -= 1
                            if job.pending == 0:
                                results[i] = self._finish_split(job)
                                for slot in job.slots:
                                    self._release_slot(slot, outstanding)
                                results[i].latency_s = perf_counter() - t0
                        continue
                    if task.kind == "whole":
                        results[i] = payload
                        payload.attempts = task.attempts
                        payload.failed_over = task.failed_over
                        moved = self._materialize(payload, outstanding)
                        bytes_shm += moved
                        if (moved == 0 and payload.ok
                                and payload.rgb is not None and task.piped):
                            bytes_pickle += payload.rgb.nbytes
                        res = results[i]
                        res.wall_us = sum(
                            s.duration_s for s in res.spans) * 1e6 or None
                        res.latency_s = perf_counter() - t0
                    elif task.kind == "spec":
                        job = spec_jobs[i]
                        job.attempts = max(job.attempts, task.attempts)
                        chunk, trace, planes, err_type, err, span = payload
                        job.spans.append(span)
                        if trace is None:
                            # Structural task failure — treated as one
                            # more misspeculated chunk, never an image
                            # error (the stitch repairs or falls back).
                            job.traces_by_chunk[chunk.index] = None
                        else:
                            if isinstance(planes, tuple):
                                # Shared-memory refs: zero-copy views;
                                # the slot stays leased until the stitch
                                # scatters them into the global grid.
                                trace.planes = [
                                    self.arena.resolve(r, copy=False)
                                    for r in planes]
                                bytes_shm += sum(r.nbytes for r in planes)
                                slot = outstanding.get(planes[0].segment)
                                if slot is not None:
                                    job.slots.append(slot)
                            else:
                                if task.piped:
                                    bytes_pickle += sum(
                                        p.nbytes for p in planes)
                                trace.planes = planes
                            job.traces_by_chunk[chunk.index] = trace
                        job.pending -= 1
                        if job.pending == 0:
                            results[i] = self._finish_speculative(job)
                            for slot in job.slots:
                                self._release_slot(slot, outstanding)
                            results[i].wall_us = sum(
                                s.duration_s
                                for s in results[i].spans) * 1e6 or None
                            results[i].latency_s = perf_counter() - t0
                    else:
                        job = split_jobs[i]
                        job.attempts = max(job.attempts, task.attempts)
                        seg, planes, err_type, err, span = payload
                        job.spans.append(span)
                        if planes is None:
                            job.error_type = job.error_type or err_type
                            job.error = job.error or err
                        elif isinstance(planes, tuple):
                            # Shared-memory refs: zero-copy views; the
                            # slot stays leased until the merge scatters
                            # them into the whole-image grid.
                            views = [self.arena.resolve(r, copy=False)
                                     for r in planes]
                            bytes_shm += sum(r.nbytes for r in planes)
                            slot = outstanding.get(planes[0].segment)
                            if slot is not None:
                                job.slots.append(slot)
                            job.planes_by_seg[seg.index] = (seg, views)
                        else:
                            if task.piped:
                                bytes_pickle += sum(
                                    p.nbytes for p in planes)
                            job.planes_by_seg[seg.index] = (seg, planes)
                        job.pending -= 1
                        if job.pending == 0:
                            results[i] = self._finish_split(job)
                            for slot in job.slots:
                                self._release_slot(slot, outstanding)
                            results[i].wall_us = sum(
                                s.duration_s
                                for s in results[i].spans) * 1e6 or None
                            results[i].latency_s = perf_counter() - t0
            gather_complete = True
        finally:
            # Crash-safety for slots whose tasks never handed them
            # back.  After a *complete* gather every remaining slot
            # belongs to a future that resolved with an error (its
            # worker is dead or done), so recycling is safe.  On an
            # aborted gather (submit raised, exception mid-loop) a
            # sibling worker may still be writing into its lease —
            # those names are quarantined (unlinked, never reused),
            # not returned to the ring.
            for slot in list(outstanding.values()):
                if gather_complete:
                    self._release_slot(slot, outstanding)
                elif self.arena is not None:
                    outstanding.pop(slot.name, None)
                    self.arena.discard(slot)

        for i, extra in trace_parent.items():
            # Parent-side spans (schedule, lane_excluded, attempts) ride
            # in front of the worker-side spans already on the result.
            if results[i] is not None:
                results[i].trace_spans = extra + results[i].trace_spans

        wall_s = perf_counter() - t0
        done = [r for r in results if r is not None]
        spans = [s for r in done for s in r.spans]
        all_pools = [self.pool]
        if self.registry is not None:
            all_pools.extend(self.registry.pools.values())
        workers = sum(p.workers for p in all_pools
                      if id(p) in pools_used) or self.pool.workers
        stats = BatchStats.from_spans(
            batch_size=len(done),
            ok=sum(r.ok for r in done),
            failed=sum(not r.ok for r in done),
            wall_s=wall_s, workers=workers,
            latencies_s=[r.latency_s for r in done],
            spans=spans, bytes_shm=bytes_shm, bytes_pickle=bytes_pickle)
        self.retries_total += retries
        return BatchResult(
            results=done, stats=stats, schedule=schedule,
            lane_pools=(self.registry.describe()
                        if self.registry is not None else None),
            transport=self.transport, retries=retries,
            lane_failures=lane_failures)

    def _finish_split(self, job: _SplitJob) -> ImageResult:
        """Merge a split image's segments and run the pixel stages."""
        req, info = job.request, job.info
        if job.error is not None or job.error_type is not None:
            return ImageResult(
                request_id=req.request_id, ok=False,
                error_type=job.error_type, error=job.error,
                segments=len(job.planes_by_seg) + 1, spans=job.spans,
                infra_failure=job.infra, attempts=job.attempts)
        t0 = perf_counter()
        geo = info.geometry
        merged = CoefficientBuffers.empty(geo)
        for seg, planes in job.planes_by_seg.values():
            scatter_segment(seg, planes, geo, merged)
        rgb = pixels_from_coefficients(info, merged, DecodeOptions(
            idct_method=req.idct_method,
            fancy_upsampling=req.fancy_upsampling,
            entropy_engine=req.entropy_engine))
        t1 = perf_counter()
        job.spans.append(WorkSpan(worker_name(), t0, t1))
        trace_spans = []
        if req.trace is not None:
            trace_spans.append(child_span(
                req.trace, "merge", worker_name(), "cpu-parallel",
                t0, t1, segments=len(job.planes_by_seg)))
        return ImageResult(
            request_id=req.request_id, ok=True, rgb=rgb,
            width=info.width, height=info.height,
            segments=len(job.planes_by_seg), spans=job.spans,
            attempts=job.attempts, trace_spans=trace_spans)

    def _finish_speculative(self, job: _SpecJob) -> ImageResult:
        """Stitch a speculative image's chunk traces and run the pixel
        stages.

        Misspeculated boundaries (and chunks lost to crashed workers)
        are healed by sequential gap repair inside the stitch; only
        when coverage cannot be established at all does the whole scan
        re-decode sequentially — which also reproduces the oracle's
        exact error for hostile streams.  Either way the coefficients
        are bit-identical to the sequential decode.
        """
        req, info = job.request, job.info
        geo = info.geometry
        traces = [job.traces_by_chunk.get(k)
                  for k in range(len(job.chunks))]
        t0 = perf_counter()
        if job.infra and not any(t is not None for t in traces):
            # Every chunk died on infrastructure: the pool is gone, and
            # quietly serializing the whole decode in the parent would
            # mask it.  Partial loss heals below; total loss is terminal.
            job.spans.append(WorkSpan(worker_name(), t0, perf_counter()))
            return ImageResult(
                request_id=req.request_id, ok=False,
                error_type="WorkerCrashError",
                error="all speculative chunks lost to worker crashes",
                segments=len(job.chunks), spans=job.spans,
                misspeculated=len(job.chunks),
                infra_failure=True, attempts=job.attempts)
        coeffs, report = stitch_chunks(
            traces, job.chunks, geo,
            repair=make_repairer(job.prescan, geo, job.tables))
        if coeffs is None:
            try:
                coeffs = _decode_sequential_prescanned(
                    job.prescan, geo, job.tables, info.restart_interval)
            except Exception as exc:
                job.spans.append(
                    WorkSpan(worker_name(), t0, perf_counter()))
                return ImageResult(
                    request_id=req.request_id, ok=False,
                    error_type=type(exc).__name__, error=str(exc),
                    segments=len(job.chunks), spans=job.spans,
                    misspeculated=len(report.misspeculated),
                    infra_failure=job.infra, attempts=job.attempts)
        rgb = pixels_from_coefficients(info, coeffs, DecodeOptions(
            idct_method=req.idct_method,
            fancy_upsampling=req.fancy_upsampling,
            entropy_engine=req.entropy_engine))
        t1 = perf_counter()
        job.spans.append(WorkSpan(worker_name(), t0, t1))
        trace_spans = []
        if req.trace is not None:
            trace_spans.append(child_span(
                req.trace, "stitch", worker_name(), "cpu-parallel",
                t0, t1, chunks=len(job.chunks),
                misspeculated=len(report.misspeculated)))
        return ImageResult(
            request_id=req.request_id, ok=True, rgb=rgb,
            width=info.width, height=info.height,
            segments=len(job.chunks), spans=job.spans,
            speculative=report.ok,
            misspeculated=len(report.misspeculated),
            attempts=job.attempts, trace_spans=trace_spans)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Shut pools down (waits for in-flight tasks), then unlink
        every shared-memory segment the arena still holds — including
        slots a crashed worker never returned.  A caller-supplied
        ``ExecutorRegistry`` is left open (the caller owns it); only a
        registry this decoder built from a layout spec is closed."""
        self.pool.close()
        if self.registry is not None and self._owns_registry:
            self.registry.close()
        if self.arena is not None:
            self.arena.close()

    def __enter__(self) -> "BatchDecoder":
        """Context-manager entry: the decoder itself."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: close the pool."""
        self.close()


class DecodeService:
    """Pull-driven compatibility facade over
    :class:`~repro.service.session.DecodeSession`.

    Producers :meth:`submit` images (raw bytes or fully-specified
    :class:`ImageRequest`\\ s); the owner drives :meth:`run_once` /
    :meth:`drain` to decode queued work in batches.  Submission is
    non-blocking by default, so a full queue surfaces immediately as
    :class:`~repro.errors.QueueFullError` — the backpressure contract.

    .. deprecated:: PR 4
        New code should use
        :class:`~repro.service.session.DecodeSession` directly: its
        ``submit`` returns a per-request future-like
        :class:`~repro.service.session.DecodeHandle` and its background
        pump overlaps submission with completion — this class survives
        for the pull-driven call sites, running the session pump-less
        so the ``submit``/``run_once``/``drain`` call surface and
        batching behave as before.  One deliberate reporting change:
        ``ImageResult.latency_s`` (and the latency percentiles built
        from it) now measures *submit*-to-completion, so time spent
        queued between ``run_once`` calls counts — the honest number
        for a service, where the old dispatch-to-completion figure
        hid queueing delay.
    """

    def __init__(self, batch_size: int = 8, queue_capacity: int = 32,
                 workers: int | None = None, backend: str | None = None,
                 defaults: ImageRequest | None = None,
                 scheduler: ModelScheduler | str | None = None,
                 transport: str = "auto",
                 lane_pools: "object | str | bool | None" = None,
                 retry_budget: int | None = None,
                 faults: FaultPlan | None = None,
                 default_deadline_ms: float | None = None,
                 speculative: str | None = None,
                 tracing: str = "off", trace_sample: float = 0.1,
                 trace_log: "str | None" = None) -> None:
        """Build the underlying pump-less session; *batch_size* caps one
        drain step.

        *scheduler* (policy name or
        :class:`~repro.service.scheduler.ModelScheduler`) turns on
        model-guided cross-image scheduling; the service then feeds each
        batch's observed per-image times back into the scheduler's
        per-lane throughput estimates after every :meth:`run_once`.
        *transport*/*lane_pools* are forwarded to
        :class:`BatchDecoder` (shared-memory plane transport and
        lane-bound executor pools), as are the fault-tolerance knobs
        *retry_budget*/*faults*; *default_deadline_ms* applies a
        deadline to every request that carries none (expired requests
        are shed at :meth:`run_once` batch forming, their handles
        failing with :class:`~repro.errors.DeadlineExceededError`).
        """
        from .session import DecodeSession

        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.session = DecodeSession(
            max_batch=batch_size, queue_capacity=queue_capacity,
            workers=workers, backend=backend, defaults=defaults,
            scheduler=scheduler, transport=transport,
            lane_pools=lane_pools, retry_budget=retry_budget,
            faults=faults, default_deadline_ms=default_deadline_ms,
            speculative=speculative, tracing=tracing,
            trace_sample=trace_sample, trace_log=trace_log, pump=False)

    @property
    def batch_size(self) -> int:
        """Maximum images decoded by one :meth:`run_once` step."""
        return self.session.max_batch

    @property
    def queue(self) -> SubmissionQueue:
        """The session's bounded submission queue."""
        return self.session.queue

    @property
    def decoder(self) -> BatchDecoder:
        """The session's batch decoder (pool + optional scheduler)."""
        return self.session.decoder

    @property
    def stats(self):
        """Running totals across every processed batch."""
        return self.session.stats

    def submit(self, item: bytes | ImageRequest,
               timeout: float | None = 0) -> Any:
        """Enqueue one image; returns its request id.

        ``timeout=0`` (default) fails fast with
        :class:`~repro.errors.QueueFullError` when the queue is at
        capacity; ``timeout=None`` blocks until space frees up.

        Auto-assigned ids are unique and monotonically increasing even
        under concurrent producers; an id is skipped (never reissued)
        when the queue rejects its submission.  (The session's
        :class:`~repro.service.session.DecodeHandle` is dropped here —
        this API predates per-request handles; results come back from
        :meth:`run_once`.)
        """
        return self.session.submit(item, timeout=timeout).request_id

    def run_once(self) -> BatchResult | None:
        """Decode one batch of queued requests (None when queue empty).

        Scheduled batches additionally (a) fold observed per-image times
        into the scheduler's per-lane feedback (the cross-batch
        adaptation loop) and (b) accumulate per-lane placement counts on
        :attr:`stats`.
        """
        return self.session.run_once()

    def drain(self) -> list[BatchResult]:
        """Decode batches until the queue is empty; return all results."""
        out = []
        while True:
            result = self.run_once()
            if result is None:
                return out
            out.append(result)

    @property
    def pending(self) -> int:
        """Requests waiting in the submission queue."""
        return self.session.pending

    def close(self) -> None:
        """Close the session (refusing new submissions) and the pool.

        Matches the historical contract: queued-but-undrained requests
        are not decoded on close (their handles are cancelled).
        """
        self.session.close(drain=False)

    def __enter__(self) -> "DecodeService":
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: close queue and pool."""
        self.close()
