"""Zero-copy shared-memory plane transport for the decode service.

The paper's dispatch term ``Tdisp`` (Eq 5/6) prices moving decoded
planes between devices; the service's process backend pays the same
tax in a different currency — every worker pickles its full RGB array
back through the executor's result pipe.  This module removes the
serialization from that hop: workers write decoded planes into named
``multiprocessing.shared_memory`` segments and send back only a tiny
:class:`PlaneRef` descriptor ``(segment, offset, shape, dtype)``; the
parent maps the same physical pages and materializes the array with at
most one ``memcpy`` (or none, with ``copy=False``).

Three cooperating pieces:

- :class:`PlaneArena` — the parent-side segment manager: a ring of
  reusable named segments (``repro-<pid>-...``), leased per task and
  released on gather.  Every name the arena ever issued is tracked, so
  :meth:`PlaneArena.close` can unlink segments even when the worker
  that was filling one died mid-batch; :meth:`PlaneArena.leaked`
  reports the slots currently unaccounted for.
- :func:`publish_plane` / :func:`publish_planes` — the worker-side
  writers: attach to the leased segment by name (attachments are cached
  per process, so a reused ring slot costs no re-``mmap``), copy the
  array(s) in, return descriptors.
- :func:`resolve_transport` / :func:`shm_available` — policy: ``shm``
  engages only where it can win (a process-backend pool on a host with
  working POSIX shared memory); everywhere else the service keeps the
  plain pickle path, so serial/thread backends behave exactly as
  before.

:func:`peek_dimensions` rounds the module out: a marker-level SOF scan
that tells the parent how many bytes to lease without paying a full
header parse on the batch hot path.
"""

from __future__ import annotations

import os
import secrets
import threading
from dataclasses import dataclass

import numpy as np

from ..errors import ServiceError

#: Recognized transport names (``auto`` resolves per backend/host).
TRANSPORTS = ("auto", "shm", "pickle")

#: Segment capacities are rounded up to this granularity so a ring slot
#: leased for one image is reusable for the next similarly-sized one.
GRANULARITY = 256 * 1024

#: Plane offsets inside a packed segment are aligned to this many bytes.
ALIGNMENT = 64

#: Payloads below this size stay on the pickle path even when shm is
#: active: a segment lease + worker attach costs more than pickling a
#: few KB through the result pipe ever will.
SHM_MIN_BYTES = 32 * 1024

_shm_probe_result: bool | None = None


def _shared_memory_module():
    """Import guard: ``multiprocessing.shared_memory`` (3.8+)."""
    from multiprocessing import shared_memory
    return shared_memory


def shm_available() -> bool:
    """True when POSIX shared memory demonstrably works on this host.

    Probed once per process by creating and unlinking a tiny segment;
    any failure (missing ``/dev/shm``, sandboxed ``shm_open``, missing
    module) makes the service fall back to pickle transport.
    """
    global _shm_probe_result
    if _shm_probe_result is None:
        try:
            shared_memory = _shared_memory_module()
            probe = shared_memory.SharedMemory(
                create=True, size=GRANULARITY,
                name=f"repro-probe-{os.getpid()}-{secrets.token_hex(4)}")
            probe.close()
            probe.unlink()
            _shm_probe_result = True
        except Exception:
            _shm_probe_result = False
    return _shm_probe_result


def resolve_transport(transport: str, backends) -> str:
    """Resolve a requested transport against the pools that will run.

    *backends* is the collection of worker-pool backend names the
    decoder dispatches to.  ``shm`` (and ``auto``) resolve to ``"shm"``
    only when at least one pool is process-backed and
    :func:`shm_available` holds — thread and serial workers share the
    parent's address space, so there is nothing to transport.  Anything
    else resolves to ``"pickle"``; an explicit ``shm`` request degrades
    gracefully rather than raising, per the service contract that
    transport selection never breaks a decode.
    """
    if transport not in TRANSPORTS:
        raise ServiceError(
            f"unknown transport {transport!r} (choose from {list(TRANSPORTS)})")
    if transport == "pickle":
        return "pickle"
    if "process" in set(backends) and shm_available():
        return "shm"
    return "pickle"


# ---------------------------------------------------------------------------
# Descriptors.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PlaneRef:
    """Where one decoded plane lives inside a shared-memory segment.

    This is the only thing a worker sends back over the result pipe:
    a name, an offset, a shape and a dtype — a few hundred bytes no
    matter how large the plane is.
    """

    segment: str
    offset: int
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Payload size of the referenced plane in bytes."""
        n = np.dtype(self.dtype).itemsize
        for dim in self.shape:
            n *= dim
        return n


@dataclass(frozen=True)
class PlaneSlot:
    """One leased ring segment a worker may write planes into."""

    name: str
    capacity: int


def _align(offset: int) -> int:
    """Round *offset* up to the packing alignment."""
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def packed_nbytes(sizes) -> int:
    """Capacity needed to pack planes of the given byte *sizes*.

    The parent uses this to lease a slot for a multi-plane payload with
    exactly the layout :func:`publish_planes` will write.
    """
    total = 0
    for nbytes in sizes:
        total = _align(total) + nbytes
    return total


# ---------------------------------------------------------------------------
# Worker side.
# ---------------------------------------------------------------------------

#: Per-process cache of attached segments; ring reuse makes the same
#: few names recur, so each worker pays the ``shm_open``/``mmap`` once.
#: Bounded: beyond this many entries the oldest attachment is closed,
#: so workers in a long-running service do not pin pages of segments
#: the arena has long since unlinked.
_ATTACH_CACHE_MAX = 32
_attached: dict[str, object] = {}
_attached_lock = threading.Lock()


def _attach(name: str):
    """Attach to segment *name*, cached, without tracker side effects.

    ``SharedMemory(name=...)`` registers the segment with the
    ``resource_tracker`` even when merely attaching.  The arena's
    parent owns the lifecycle, and under the fork start method parent
    and workers *share* one tracker process — an attach-side
    registration would collide with (and an unregister would cancel)
    the parent's own, producing bogus "leaked shared_memory" noise or
    tracker KeyErrors at shutdown (bpo-38119).  Python 3.13+ exposes
    ``track=False``; on older interpreters registration is suppressed
    around the constructor instead.
    """
    with _attached_lock:
        shm = _attached.get(name)
        if shm is not None:
            return shm
        shared_memory = _shared_memory_module()
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13
            from multiprocessing import resource_tracker
            original = resource_tracker.register
            resource_tracker.register = lambda *a, **k: None
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original
        while len(_attached) >= _ATTACH_CACHE_MAX:
            # FIFO eviction; process-pool workers run one task at a
            # time, so nothing can be mid-write in an evicted segment.
            old = _attached.pop(next(iter(_attached)))
            try:
                old.close()
            except Exception:
                pass
        _attached[name] = shm
        return shm


#: Per-process shared-memory publish tallies (worker side): count of
#: :func:`publish_plane` calls and total bytes copied.  Plain ints
#: bumped under the GIL — cheap enough to stay on in every mode; the
#: parent's /metrics scrapes its own process, workers expose theirs
#: through trace spans (``shm_publish``).
PUBLISH_COUNTERS = {"planes": 0, "bytes": 0}


def publish_counters_snapshot() -> dict:
    """Copy of this process's :data:`PUBLISH_COUNTERS`."""
    return dict(PUBLISH_COUNTERS)


def publish_plane(slot: PlaneSlot, array: np.ndarray,
                  offset: int = 0) -> PlaneRef:
    """Write *array* into *slot* at *offset*; return its descriptor.

    Worker-side: one ``memcpy`` into the shared pages, no
    serialization.  Raises :class:`~repro.errors.ServiceError` when the
    slot cannot hold the plane — callers fall back to pickling the
    array instead of failing the decode.
    """
    array = np.ascontiguousarray(array)
    if offset + array.nbytes > slot.capacity:
        raise ServiceError(
            f"plane ({array.nbytes} B at offset {offset}) exceeds slot "
            f"{slot.name} capacity ({slot.capacity} B)")
    shm = _attach(slot.name)
    dst = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf,
                     offset=offset)
    np.copyto(dst, array)
    PUBLISH_COUNTERS["planes"] += 1
    PUBLISH_COUNTERS["bytes"] += array.nbytes
    return PlaneRef(segment=slot.name, offset=offset,
                    shape=tuple(array.shape), dtype=array.dtype.str)


def publish_planes(slot: PlaneSlot, arrays) -> tuple[PlaneRef, ...]:
    """Pack several planes into one slot (aligned); return descriptors.

    The layout matches :func:`packed_nbytes`, so a slot leased with
    that capacity always fits.
    """
    refs = []
    offset = 0
    for array in arrays:
        offset = _align(offset)
        refs.append(publish_plane(slot, array, offset=offset))
        offset += refs[-1].nbytes
    return tuple(refs)


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------

class PlaneArena:
    """Parent-side ring of reusable shared-memory segments.

    Segments are created on demand (capacity rounded up to
    :data:`GRANULARITY`), leased to exactly one in-flight task at a
    time, and returned to the free ring on release.  The arena keeps
    its own handle to every segment it ever created, which makes
    cleanup unconditional: :meth:`close` unlinks each one whether it is
    free, still leased to a task whose worker died, or already gone.

    Thread-safe: the session pump, pull-mode callers and the gather
    loop may lease/release concurrently.
    """

    def __init__(self, granularity: int = GRANULARITY,
                 max_free: int = 32) -> None:
        """Create an empty arena.

        *granularity* is the capacity rounding unit; *max_free* bounds
        the free ring — releasing beyond it unlinks the surplus segment
        instead of hoarding ``/dev/shm`` space under shifting traffic.
        """
        if granularity <= 0:
            raise ServiceError(
                f"granularity must be positive, got {granularity}")
        self.granularity = granularity
        self.max_free = max_free
        self._lock = threading.Lock()
        self._segments: dict[str, object] = {}   # name -> SharedMemory
        self._free: list[str] = []               # names, LRU order
        self._leased: set[str] = set()
        self._prefix = f"repro-{os.getpid()}-{secrets.token_hex(4)}"
        self._counter = 0
        self._closed = False
        #: Cumulative counters (observability): segments created,
        #: leases served from the ring, bytes written through the arena.
        self.created = 0
        self.reused = 0

    # -- leasing --------------------------------------------------------

    def lease(self, nbytes: int) -> PlaneSlot:
        """Lease a slot holding at least *nbytes* bytes.

        Reuses the smallest adequate free segment, else creates a new
        one (capacity rounded up to the granularity).
        """
        if nbytes < 0:
            raise ServiceError(f"lease size must be >= 0, got {nbytes}")
        with self._lock:
            if self._closed:
                raise ServiceError("plane arena is closed")
            best = None
            for name in self._free:
                cap = self._segments[name].size
                if cap >= nbytes and (best is None
                                      or cap < self._segments[best].size):
                    best = name
            if best is not None:
                self._free.remove(best)
                self._leased.add(best)
                self.reused += 1
                return PlaneSlot(name=best, capacity=self._segments[best].size)
            capacity = max(
                self.granularity,
                (nbytes + self.granularity - 1)
                // self.granularity * self.granularity)
            shared_memory = _shared_memory_module()
            self._counter += 1
            name = f"{self._prefix}-{self._counter}"
            shm = shared_memory.SharedMemory(
                create=True, size=capacity, name=name)
            self._segments[name] = shm
            self._leased.add(name)
            self.created += 1
            return PlaneSlot(name=name, capacity=capacity)

    def release(self, slot: "PlaneSlot | str") -> None:
        """Return a leased slot to the free ring; idempotent.

        Releasing an unknown or already-free name is a no-op — the
        gather loop's error paths may race a blanket cleanup.  Beyond
        ``max_free`` parked segments, the released one is unlinked.
        """
        name = slot.name if isinstance(slot, PlaneSlot) else slot
        with self._lock:
            if self._closed or name not in self._leased:
                return
            self._leased.discard(name)
            if len(self._free) >= self.max_free:
                self._unlink(name)
            else:
                self._free.append(name)

    def discard(self, slot: "PlaneSlot | str") -> None:
        """Unlink a leased slot *without* returning it to the ring.

        The quarantine path: when a batch aborts while workers may
        still be writing into their leased segments, recycling those
        names would let the *next* batch read a segment a stale worker
        is mid-``memcpy`` into.  Discarding unlinks the name instead —
        the stale worker's mapping stays valid until it drops its
        handle, and no future lease can collide with it.  Idempotent.
        """
        name = slot.name if isinstance(slot, PlaneSlot) else slot
        with self._lock:
            if self._closed or name not in self._leased:
                return
            self._leased.discard(name)
            self._unlink(name)

    def leaked(self) -> list[str]:
        """Names of slots leased but never released (in-flight or lost).

        Between batches this should be empty; a non-empty list after a
        batch completed means a code path dropped a slot (the killed-
        worker regression guards exactly that).  :meth:`close` unlinks
        these too.
        """
        with self._lock:
            return sorted(self._leased)

    # -- materialization ------------------------------------------------

    def resolve(self, ref: PlaneRef, copy: bool = True) -> np.ndarray:
        """Materialize the array a :class:`PlaneRef` points at.

        ``copy=True`` (the service default) returns an independent
        array — one ``memcpy``, after which the slot may be reused.
        ``copy=False`` returns a zero-copy view into the segment: valid
        only until the slot is released or the arena closed, the right
        choice when the caller immediately reduces the data (e.g.
        scattering segment planes into the merged grid).
        """
        with self._lock:
            shm = self._segments.get(ref.segment)
        if shm is None:
            raise ServiceError(
                f"plane ref names unknown segment {ref.segment!r}")
        view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype),
                          buffer=shm.buf, offset=ref.offset)
        return view.copy() if copy else view

    # -- lifecycle ------------------------------------------------------

    @property
    def segments(self) -> int:
        """Segments currently backed by shared memory."""
        with self._lock:
            return len(self._segments)

    def _unlink(self, name: str) -> None:
        """Close and unlink one segment (lock held by caller)."""
        shm = self._segments.pop(name, None)
        if shm is None:
            return
        try:
            shm.close()
        except Exception:
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass

    def close(self) -> None:
        """Unlink every segment — free, leased or orphaned; idempotent.

        Safe to call while workers that were filling slots have died:
        the arena's own handles are authoritative, no worker
        cooperation is needed.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for name in list(self._segments):
                self._unlink(name)
            self._free.clear()
            self._leased.clear()

    def __del__(self) -> None:
        """Last-resort cleanup when the arena is garbage-collected."""
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "PlaneArena":
        """Context-manager entry: the arena itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: unlink everything."""
        self.close()


# ---------------------------------------------------------------------------
# Header peeking.
# ---------------------------------------------------------------------------

#: SOF markers that carry frame dimensions (C0-CF minus DHT/JPG/DAC).
_SOF_MARKERS = frozenset(range(0xC0, 0xD0)) - {0xC4, 0xC8, 0xCC}


def peek_dimensions(data: bytes) -> "tuple[int, int] | None":
    """Cheap ``(width, height)`` peek from a JPEG's SOF header.

    A marker-level scan (skip each segment by its length field) that
    stops at the first frame header — no table parsing, no entropy
    scan, so the batch dispatcher can size a transport lease in
    microseconds.  Returns ``None`` for anything malformed; callers
    then skip the lease and let the worker report the precise error.
    """
    n = len(data)
    if n < 4 or data[0] != 0xFF or data[1] != 0xD8:  # SOI
        return None
    i = 2
    while i + 3 < n:
        if data[i] != 0xFF:
            return None
        marker = data[i + 1]
        if marker == 0xFF:      # fill byte
            i += 1
            continue
        if marker == 0xD9 or marker == 0xDA:  # EOI / SOS: no SOF seen
            return None
        length = (data[i + 2] << 8) | data[i + 3]
        if length < 2 or i + 2 + length > n:
            return None
        if marker in _SOF_MARKERS:
            if length < 7:
                return None
            height = (data[i + 5] << 8) | data[i + 6]
            width = (data[i + 7] << 8) | data[i + 8]
            if width <= 0 or height <= 0:
                return None
            return width, height
        i += 2 + length
    return None
