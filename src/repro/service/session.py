"""Futures-based decode sessions: per-request handles over a pumped
batch loop.

:class:`~repro.service.batch.DecodeService` is pull-driven — producers
``submit`` and the owner must interleave ``run_once``/``drain`` calls to
make progress, so submission can never overlap completion.
:class:`DecodeSession` inverts that: ``submit`` returns a
:class:`DecodeHandle` (future-like — ``done()``, ``result(timeout)``,
``add_done_callback()``) and a background **pump thread** forms batches
on its own, by size or age:

- a batch dispatches as soon as ``max_batch`` requests are pending, or
- when the *oldest* pending request has waited ``max_delay_ms`` — the
  latency bound that keeps a trickle of traffic from waiting forever
  for a full batch.

Formed batches run through the ordinary
:class:`~repro.service.batch.BatchDecoder` (and therefore through the
model-guided :class:`~repro.service.scheduler.ModelScheduler` when one
is attached), so everything the batch layer guarantees — bit-identity
with :func:`repro.jpeg.decoder.decode_jpeg`, per-image error isolation,
restart-segment fan-out — holds unchanged; a failed decode *resolves*
its handle with an ``ok=False`` :class:`~repro.service.batch.ImageResult`
rather than raising, exactly like the batch API.  Scheduler feedback
(:meth:`~repro.service.scheduler.ModelScheduler.observe`) and
:class:`~repro.service.stats.ServiceStats` accumulation both happen
inside the pump loop, under the session's stats lock, so concurrent
readers (``GET /stats`` in :mod:`repro.service.http`) always see a
consistent snapshot.

Lifecycle: sessions are context managers.  ``close(drain=True)`` (the
default) decodes everything already accepted, then shuts the pool down;
``close(drain=False)`` cancels every pending handle instead
(``handle.cancelled()`` turns true, ``result()`` raises
``CancelledError``).  After close, ``submit`` raises
:class:`~repro.errors.ServiceClosedError`.  Close is idempotent.

The async front end (:mod:`repro.service.aio`) and the HTTP shim
(:mod:`repro.service.http`) both layer on this class; the legacy
pull-driven :class:`~repro.service.batch.DecodeService` survives as a
thin facade over a pump-less session (``pump=False``).
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Any, Callable

from ..errors import (
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
)
from .batch import BatchDecoder, BatchResult, ImageRequest, ImageResult
from .obs import ObsHub, child_span, make_span
from .queue import SubmissionQueue
from .scheduler import ModelScheduler
from .stats import ServiceStats

#: Weighted-shedding admission fractions by priority class: the share
#: of the submission queue each class may fill.  Low-priority requests
#: (class 0) only admit into half the queue, normal (class 1) into 90%;
#: high (class 2) and any higher class use the full capacity — so under
#: overload the low classes shed first and high-priority latency is
#: preserved.  Override per session via ``shed_fractions=``.
DEFAULT_SHED_FRACTIONS: dict[int, float] = {0: 0.5, 1: 0.9}


class DecodeHandle:
    """Future-like handle for one submitted decode request.

    Thin, thread-safe wrapper over :class:`concurrent.futures.Future`
    that resolves to an :class:`~repro.service.batch.ImageResult`.
    Decode *failures* still resolve the handle (with ``ok=False`` on the
    result) — only infrastructure faults (a dead worker pool) surface as
    exceptions, and cancellation (``close(drain=False)``) as
    ``CancelledError``.
    """

    def __init__(self, request_id: Any) -> None:
        """Create a pending handle echoing *request_id*."""
        self.request_id = request_id
        #: perf_counter at submission; the pump's age deadline and the
        #: submit-to-completion latency both measure from here.
        self.submitted_at = perf_counter()
        self._future: Future = Future()

    def done(self) -> bool:
        """True once resolved or cancelled."""
        return self._future.done()

    def cancelled(self) -> bool:
        """True when the request was cancelled before it decoded."""
        return self._future.cancelled()

    def cancel(self) -> bool:
        """Best-effort cancel; returns True when the handle was still
        pending.  The decode may still run — only the resolution is
        dropped."""
        return self._future.cancel()

    def result(self, timeout: float | None = None) -> ImageResult:
        """Block up to *timeout* seconds for the decode outcome.

        Raises ``TimeoutError`` at the deadline, ``CancelledError`` when
        the handle was cancelled, and re-raises infrastructure failures.
        """
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The infrastructure exception, or None when the decode
        resolved normally (even with ``ok=False``)."""
        return self._future.exception(timeout)

    def add_done_callback(self, fn: Callable[["DecodeHandle"], None]) -> None:
        """Call ``fn(handle)`` exactly once when the handle completes
        (immediately when already done); exceptions from *fn* are
        swallowed by the Future machinery, never propagated into the
        pump."""
        self._future.add_done_callback(lambda _fut: fn(self))

    # -- resolution (session-internal) ---------------------------------

    def _set_result(self, result: ImageResult) -> None:
        """Resolve with *result*; a lost race against cancel is a no-op."""
        try:
            self._future.set_result(result)
        except InvalidStateError:
            pass

    def _set_exception(self, exc: BaseException) -> None:
        """Fail with an infrastructure error; no-op when cancelled."""
        try:
            self._future.set_exception(exc)
        except InvalidStateError:
            pass


@dataclass
class _Entry:
    """One queued request and the handle that will carry its outcome."""

    request: ImageRequest
    handle: DecodeHandle
    #: Absolute ``perf_counter`` instant the request expires (None = no
    #: deadline): submission time plus ``deadline_ms``.
    deadline_at: float | None = None
    #: Load-shedding priority class (mirrors the request's; see
    #: :data:`DEFAULT_SHED_FRACTIONS`).
    priority: int = 1

    @property
    def edf_key(self) -> tuple[float, float, float]:
        """Batch-forming sort key: priority class first (higher
        classes dispatch ahead of lower ones), then earliest deadline,
        then FIFO age; deadline-free requests sort after every
        deadlined one of their class."""
        return (-self.priority,
                self.deadline_at if self.deadline_at is not None
                else math.inf, self.handle.submitted_at)


class DecodeSession:
    """Push-driven decode front end: futures in, batches underneath.

    ``submit`` enqueues a request and immediately returns its
    :class:`DecodeHandle`; the background pump thread forms batches by
    size (``max_batch``) or age (``max_delay_ms``) and resolves handles
    as results complete.  Construct with ``pump=False`` for the
    pull-driven mode (no thread; the caller drives :meth:`run_once`) —
    that is how the legacy :class:`~repro.service.batch.DecodeService`
    facade runs, and the deterministic choice for lifecycle tests.
    """

    def __init__(self, max_batch: int = 8, max_delay_ms: float = 2.0,
                 queue_capacity: int = 32,
                 workers: int | None = None, backend: str | None = None,
                 defaults: ImageRequest | None = None,
                 scheduler: ModelScheduler | str | None = None,
                 transport: str = "auto",
                 lane_pools: "object | str | bool | None" = None,
                 shm_min_bytes: int | None = None,
                 retry_budget: int | None = None,
                 retry_backoff_s: float | None = None,
                 faults: "object | None" = None,
                 default_deadline_ms: float | None = None,
                 speculative: str | None = None,
                 shed_fractions: "dict[int, float] | None" = None,
                 tracing: str = "off", trace_sample: float = 0.1,
                 trace_log: "str | None" = None,
                 trace_capacity: int | None = None,
                 pump: bool = True) -> None:
        """Build queue, decoder and (unless ``pump=False``) the pump.

        *shed_fractions* maps priority classes to the share of the
        queue each may fill (weighted shedding; default
        :data:`DEFAULT_SHED_FRACTIONS`).  Classes absent from the map
        admit into the full capacity.

        *max_batch* caps one dispatched batch; *max_delay_ms* bounds how
        long the oldest pending request may wait for the batch to fill.
        *default_deadline_ms* applies to every request that does not
        carry its own ``deadline_ms`` (None = no default deadline);
        batch forming orders pending requests earliest-deadline-first
        and requests whose deadline passes before their decode starts
        resolve with :class:`~repro.errors.DeadlineExceededError`.
        *retry_budget*/*retry_backoff_s*/*faults* forward to
        :class:`~repro.service.batch.BatchDecoder` (worker-crash retry
        policy and chaos injection), as does *speculative*
        (``"auto"``/``"on"``/``"off"`` — the marker-free speculative
        chunk fan-out policy); the remaining knobs are those of
        :class:`~repro.service.batch.BatchDecoder` (including the
        shared-memory *transport* selection and lane-bound executor
        *lane_pools*) / :class:`~repro.service.queue.SubmissionQueue`.

        *tracing* (``"off"``/``"on"``/``"sample"``/``"unobserved"``)
        gates whether :meth:`submit` creates a root
        :class:`~repro.service.obs.TraceContext` for requests that do
        not already carry one — a request submitted *with* a context
        (a remote host replaying a client's trace) is always honored
        regardless of the local mode.  *trace_sample* is the sampled
        fraction in ``sample`` mode, *trace_log* an optional JSON-lines
        span log path, *trace_capacity* the in-memory trace retention.
        """
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_delay_ms < 0:
            raise ValueError(
                f"max_delay_ms must be non-negative, got {max_delay_ms}")
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ServiceError(
                f"default_deadline_ms must be positive, "
                f"got {default_deadline_ms}")
        self.max_batch = max_batch
        self.max_delay_ms = max_delay_ms
        self.default_deadline_ms = default_deadline_ms
        self.shed_fractions = dict(DEFAULT_SHED_FRACTIONS
                                   if shed_fractions is None
                                   else shed_fractions)
        for priority, fraction in self.shed_fractions.items():
            if not 0.0 < fraction <= 1.0:
                raise ServiceError(
                    f"shed fraction for priority {priority} must be in "
                    f"(0, 1], got {fraction}")
        self.queue = SubmissionQueue(capacity=queue_capacity)
        decoder_kwargs = {}
        if shm_min_bytes is not None:
            decoder_kwargs["shm_min_bytes"] = shm_min_bytes
        if retry_budget is not None:
            decoder_kwargs["retry_budget"] = retry_budget
        if retry_backoff_s is not None:
            decoder_kwargs["retry_backoff_s"] = retry_backoff_s
        if faults is not None:
            decoder_kwargs["faults"] = faults
        if speculative is not None:
            decoder_kwargs["speculative"] = speculative
        self.decoder = BatchDecoder(workers=workers, backend=backend,
                                    defaults=defaults, scheduler=scheduler,
                                    transport=transport,
                                    lane_pools=lane_pools, **decoder_kwargs)
        obs_kwargs = {"mode": tracing, "sample_rate": trace_sample,
                      "log_path": trace_log}
        if trace_capacity is not None:
            obs_kwargs["trace_capacity"] = trace_capacity
        self.obs = ObsHub(**obs_kwargs)
        self.stats = ServiceStats()
        self._stats_lock = threading.Lock()
        #: EDF window: entries pulled off the queue but not yet
        #: dispatched (bounded by the queue capacity, so backpressure
        #: semantics are unchanged).
        self._backlog: list[_Entry] = []
        self._backlog_lock = threading.Lock()
        self._next_id = 0
        self._id_lock = threading.Lock()
        self._closed = False
        self._close_lock = threading.Lock()
        self._cancel_pending = False
        self._pump_thread: threading.Thread | None = None
        if pump:
            self._pump_thread = threading.Thread(
                target=self._pump_loop, name="decode-session-pump",
                daemon=True)
            self._pump_thread.start()

    # -- submission -----------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has begun."""
        return self._closed

    @property
    def pending(self) -> int:
        """Requests accepted but not yet dispatched to a batch
        (queued plus buffered in the EDF window)."""
        with self._backlog_lock:
            return len(self.queue) + len(self._backlog)

    def submit(self, item: bytes | ImageRequest,
               timeout: float | None = 0) -> DecodeHandle:
        """Enqueue one image; returns its :class:`DecodeHandle`.

        ``timeout=0`` (default) fails fast with
        :class:`~repro.errors.QueueFullError` when the queue is at
        capacity — the backpressure signal front ends propagate (HTTP
        429); ``timeout=None`` blocks until space frees up, a positive
        timeout blocks at most that long.  Raises
        :class:`~repro.errors.ServiceClosedError` after :meth:`close`.

        Auto-assigned request ids are unique and monotonically
        increasing even under concurrent producers; an id is skipped
        (never reissued) when the queue rejects its submission.
        """
        if self._closed:
            raise ServiceClosedError("decode session is closed")
        if isinstance(item, ImageRequest):
            req = item
        else:
            req = replace(self.decoder.defaults, data=bytes(item))
        if req.deadline_ms is None and self.default_deadline_ms is not None:
            req = replace(req, deadline_ms=self.default_deadline_ms)
        if req.deadline_ms is not None and req.deadline_ms <= 0:
            raise ServiceError(
                f"deadline_ms must be positive, got {req.deadline_ms}")
        if not isinstance(req.priority, int) or isinstance(req.priority, bool) \
                or req.priority < 0:
            raise ServiceError(
                f"priority must be a non-negative integer, "
                f"got {req.priority!r}")
        if req.request_id is None:
            with self._id_lock:
                assigned = self._next_id
                self._next_id += 1
            req = replace(req, request_id=assigned)
        if req.trace is None:
            # Mode gate applies only to trace *creation*; a propagated
            # context (remote host replaying a client trace) is always
            # honored, so hosts need no tracing configuration.
            ctx = self.obs.maybe_start_trace()
            if ctx is not None:
                req = replace(req, trace=ctx)
        handle = DecodeHandle(req.request_id)
        deadline_at = (handle.submitted_at + req.deadline_ms / 1e3
                       if req.deadline_ms is not None else None)
        # ceil, so a fraction never shrinks a tiny queue below what an
        # unweighted session would admit (0.9 of capacity 2 is still 2).
        fraction = self.shed_fractions.get(req.priority)
        limit = (None if fraction is None
                 else max(1, math.ceil(self.queue.capacity * fraction)))
        try:
            self.queue.put(_Entry(request=req, handle=handle,
                                  deadline_at=deadline_at,
                                  priority=req.priority),
                           timeout=timeout, limit=limit)
        except QueueFullError:
            with self._stats_lock:
                self.stats.record_shed(req.priority)
            raise
        return handle

    # -- the pump -------------------------------------------------------

    def _collect(self) -> list[_Entry]:
        """Block for the first pending entry, then fill the window until
        ``max_batch`` or the oldest entry's age deadline; returns the
        formed batch in earliest-deadline-first order."""
        with self._backlog_lock:
            buffered = len(self._backlog)
        if buffered == 0:
            first = self.queue.get_batch(self.max_batch, timeout=None)
            if not first:
                return []
            with self._backlog_lock:
                self._backlog.extend(first)
                buffered = len(self._backlog)
        with self._backlog_lock:
            oldest = min(e.handle.submitted_at for e in self._backlog)
        age_deadline = oldest + self.max_delay_ms / 1e3
        while buffered < self.max_batch and not self._closed:
            remaining = age_deadline - perf_counter()
            if remaining <= 0:
                break
            more = self.queue.get_batch(
                self.max_batch - buffered, timeout=remaining)
            if more:
                with self._backlog_lock:
                    self._backlog.extend(more)
                    buffered = len(self._backlog)
            elif self.queue.closed:
                break
        return self._form_batch()

    def _form_batch(self) -> list[_Entry]:
        """Shed expired entries, then take the ``max_batch`` most urgent
        from the EDF window.

        Expired entries (their absolute deadline passed before a decode
        slot arrived) resolve with
        :class:`~repro.errors.DeadlineExceededError` — shedding them
        here, *before* dispatch, is the point: under overload the
        service spends workers only on requests whose clients are still
        waiting.  The survivors dispatch earliest-deadline-first, the
        order that minimizes deadline misses for a single shared
        resource; deadline-free requests keep FIFO order after every
        deadlined one.
        """
        now = perf_counter()
        expired: list[_Entry] = []
        with self._backlog_lock:
            live: list[_Entry] = []
            for e in self._backlog:
                if e.deadline_at is not None and now >= e.deadline_at:
                    expired.append(e)
                else:
                    live.append(e)
            live.sort(key=lambda e: e.edf_key)
            batch = live[:self.max_batch]
            self._backlog = live[self.max_batch:]
        for e in expired:
            e.handle._set_exception(DeadlineExceededError(
                f"request {e.handle.request_id} missed its "
                f"{e.request.deadline_ms:g} ms deadline before decode"))
        if expired:
            with self._stats_lock:
                self.stats.record_faults(deadline_expired=len(expired))
        return batch

    def _pump_loop(self) -> None:
        """Form and decode batches until the session closes and (in
        drain mode) the queue is empty."""
        while True:
            entries = self._collect()
            if not entries:
                if self.queue.closed:
                    return
                continue
            if self._cancel_pending:
                for e in entries:
                    e.handle.cancel()
                continue
            try:
                self._decode_entries(entries)
            except Exception:
                # The batch's handles already carry the exception; keep
                # pumping so later submissions are not stranded pending.
                continue

    def _decode_entries(self, entries: list[_Entry]) -> BatchResult | None:
        """Decode one formed batch, resolve its handles, fold stats and
        scheduler feedback.  Returns the batch result (pull-mode callers
        surface it; the pump discards it)."""
        requests = [e.request for e in entries]
        t_dispatch = perf_counter()
        try:
            batch = self.decoder.decode_batch(requests)
        except BaseException as exc:
            # Infrastructure failure (closed pool, interpreter teardown):
            # fail every handle of the batch, never silently drop one.
            for e in entries:
                e.handle._set_exception(exc)
            raise
        now = perf_counter()
        for entry, result in zip(entries, batch.results):
            # True submit-to-completion latency (the batch loop only
            # measured from dispatch).
            result.latency_s = now - entry.handle.submitted_at
            self.obs.observe_latency(result.latency_s)
            ctx = entry.request.trace
            if ctx is not None:
                # Root span carries the context's own identity; the
                # queue span covers submit -> batch dispatch.  Prepended
                # so the root leads the batch — downstream consumers
                # (remote host wire encoding, the trace store) see one
                # self-contained span list per result.
                result.trace_spans = [
                    make_span(ctx, "request", "session", "dispatch",
                              entry.handle.submitted_at, now,
                              request_id=str(entry.request.request_id),
                              ok=result.ok),
                    child_span(ctx, "queue", "session", "dispatch",
                               entry.handle.submitted_at, t_dispatch,
                               priority=entry.priority),
                ] + result.trace_spans
                self.obs.record_spans(result.trace_spans)
        # Stats and scheduler feedback fold in *before* handles resolve,
        # so a completion observer (done callback, HTTP /stats poll
        # right after a response) always sees its own batch counted.
        with self._stats_lock:
            self.stats.record(batch.stats,
                              [r.latency_s for r in batch.results])
            self.stats.record_faults(
                retries=batch.retries,
                infra_failures=sum(1 for r in batch.results
                                   if not r.ok and r.infra_failure),
                pool_rebuilds=self.decoder.rebuilds)
            if batch.schedule is not None and self.decoder.scheduler is not None:
                self.decoder.scheduler.observe(
                    batch.schedule, batch.results,
                    lane_failures=batch.lane_failures)
                self.stats.record_schedule(batch.schedule, batch.results,
                                           lane_pools=batch.lane_pools)
        for entry, result in zip(entries, batch.results):
            entry.handle._set_result(result)
        return batch

    # -- pull mode ------------------------------------------------------

    def run_once(self) -> BatchResult | None:
        """Pull-mode step: decode one batch of queued requests (None
        when nothing is pending, or when every pending request had
        already expired and was shed).  This is what the
        :class:`~repro.service.batch.DecodeService` facade drives; with
        the pump running it is also safe (the queue hands each entry to
        exactly one consumer) but normally unnecessary."""
        entries = self.queue.get_batch(self.max_batch, timeout=0)
        with self._backlog_lock:
            self._backlog.extend(entries)
            buffered = len(self._backlog)
        if buffered == 0:
            return None
        batch = self._form_batch()
        if not batch:
            return None
        return self._decode_entries(batch)

    # -- observability --------------------------------------------------

    def retry_after_s(self) -> int:
        """Suggested client back-off in whole seconds, scaled to the
        current backlog: pending requests over the observed service
        rate (images/s), clamped to [1, 30].  Before any batch has
        completed the rate is unknown and the estimate assumes one
        ``max_batch`` drains per second.  This is what HTTP 429/503/504
        responses put in ``Retry-After``."""
        backlog = self.pending
        with self._stats_lock:
            rate = self.stats.images_per_sec
        if rate <= 0:
            rate = float(self.max_batch)
        return int(min(30, max(1, math.ceil(backlog / rate))))

    def stats_snapshot(self) -> dict:
        """JSON-ready snapshot of the running service statistics plus
        queue occupancy, (when scheduled) per-lane feedback state, and
        (when sharded) per-host link health."""
        registry = self.decoder.registry
        if registry is not None and hasattr(registry, "hosts_snapshot"):
            scheduler = self.decoder.scheduler
            hosts = registry.hosts_snapshot(
                scheduler.breakers if scheduler is not None else None)
            with self._stats_lock:
                self.stats.record_hosts(hosts)
        with self._stats_lock:
            snap = self.stats.as_dict()
        snap["pending"] = len(self.queue)
        snap["queue_capacity"] = self.queue.capacity
        snap["queue_space"] = self.queue.space
        snap["max_batch"] = self.max_batch
        snap["max_delay_ms"] = self.max_delay_ms
        snap["default_deadline_ms"] = self.default_deadline_ms
        snap["retry_budget"] = self.decoder.retry_budget
        snap["closed"] = self._closed
        snap["tracing"] = {"mode": self.obs.mode, **self.obs.counters()}
        snap["transport"]["mode"] = self.decoder.transport
        if self.decoder.scheduler is not None:
            snap["scheduler"] = self.decoder.scheduler.snapshot()
        if self.decoder.registry is not None:
            snap["lane_pools"] = self.decoder.registry.describe()
        return snap

    # -- lifecycle ------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Shut the session down; idempotent.

        ``drain=True`` decodes every request already accepted (the pump
        finishes the queue; in pull mode the remaining batches run
        inline here), then closes the pool.  ``drain=False`` cancels
        every pending handle instead — in-flight batches still resolve.
        Either way, subsequent :meth:`submit` calls raise
        :class:`~repro.errors.ServiceClosedError`.
        """
        with self._close_lock:
            if self._closed:
                return
            self._cancel_pending = not drain
            self._closed = True
            self.queue.close()   # refuse new puts, wake the pump
        if self._pump_thread is not None:
            self._pump_thread.join()
        # Pull mode (and the pump's post-close leftovers, which there
        # are none of once the thread joined): finish or cancel what is
        # still queued or buffered in the EDF window.
        while True:
            entries = self.queue.get_batch(self.max_batch, timeout=0)
            with self._backlog_lock:
                self._backlog.extend(entries)
                buffered = len(self._backlog)
            if buffered == 0:
                break
            batch = self._form_batch()
            if drain:
                if batch:
                    self._decode_entries(batch)
            else:
                for e in batch:
                    e.handle.cancel()
        self.decoder.close()

    def __enter__(self) -> "DecodeSession":
        """Context-manager entry: the session itself."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: close with a full drain."""
        self.close(drain=True)
