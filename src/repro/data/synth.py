"""Deterministic synthetic image generation (corpus substrate).

The paper's corpora (imagecompression.info, CorpusNielsFrohling,
self-taken photos) are not redistributable, but the performance model
only cares about image *dimensions* and *entropy density*.  These
generators span that space deterministically:

- ``synthetic_photo``: octave-mixed filtered noise over smooth gradients
  — photo-like spectra, mid densities;
- ``synthetic_smooth``: gradients only — minimal entropy;
- ``synthetic_detail``: high-frequency texture + edges — dense entropy;
- ``synthetic_skewed``: detail concentrated in one horizontal band, for
  exercising PPS re-partitioning (the paper's "entropy data is unlikely
  to be evenly distributed in practice").

All take a seed and are pure functions of their arguments.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError


def _smooth_noise(rng: np.random.Generator, h: int, w: int,
                  scale: int) -> np.ndarray:
    """Low-frequency noise: coarse grid bilinearly upsampled to (h, w)."""
    gh = max(2, h // scale + 2)
    gw = max(2, w // scale + 2)
    coarse = rng.normal(0.0, 1.0, (gh, gw))
    ys = np.linspace(0, gh - 1.001, h)
    xs = np.linspace(0, gw - 1.001, w)
    y0 = ys.astype(int)
    x0 = xs.astype(int)
    fy = (ys - y0)[:, None]
    fx = (xs - x0)[None, :]
    c00 = coarse[y0][:, x0]
    c01 = coarse[y0][:, x0 + 1]
    c10 = coarse[y0 + 1][:, x0]
    c11 = coarse[y0 + 1][:, x0 + 1]
    return (c00 * (1 - fy) * (1 - fx) + c01 * (1 - fy) * fx
            + c10 * fy * (1 - fx) + c11 * fy * fx)


def _to_uint8(field: np.ndarray) -> np.ndarray:
    lo, hi = field.min(), field.max()
    if hi - lo < 1e-12:
        return np.full(field.shape, 128, dtype=np.uint8)
    return (255.0 * (field - lo) / (hi - lo)).astype(np.uint8)


def synthetic_photo(height: int, width: int, seed: int = 0,
                    detail: float = 0.5) -> np.ndarray:
    """Photo-like RGB image; ``detail`` in [0, 1] scales entropy density."""
    if height <= 0 or width <= 0:
        raise ReproError("image dimensions must be positive")
    if not 0.0 <= detail <= 1.0:
        raise ReproError("detail must be in [0, 1]")
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width]
    base = 0.5 * np.sin(xx / max(width, 1) * 3.1) + 0.5 * np.cos(yy / max(height, 1) * 2.3)
    channels = []
    for c in range(3):
        octaves = (
            1.0 * _smooth_noise(rng, height, width, 64)
            + 0.6 * _smooth_noise(rng, height, width, 16)
            + detail * 0.8 * _smooth_noise(rng, height, width, 4)
            + detail * 0.5 * rng.normal(0.0, 1.0, (height, width))
        )
        channels.append(_to_uint8(base + 0.8 * octaves + 0.1 * c))
    return np.stack(channels, axis=-1)


def synthetic_smooth(height: int, width: int, seed: int = 0) -> np.ndarray:
    """Gradient-only image: near-minimal entropy density."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width]
    a, b = rng.uniform(0.5, 2.0, 2)
    r = _to_uint8(xx * a + yy * b)
    g = _to_uint8(xx * b - yy * a)
    bl = _to_uint8(np.hypot(xx - width / 2, yy - height / 2))
    return np.stack([r, g, bl], axis=-1)


def synthetic_detail(height: int, width: int, seed: int = 0) -> np.ndarray:
    """Dense high-frequency texture: near-maximal entropy density."""
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 256, (height, width, 3))
    # checker-ish structure keeps it compressible enough to be JPEG-like
    yy, xx = np.mgrid[0:height, 0:width]
    stripes = ((xx // 2 + yy // 3) % 5) * 40
    return np.clip(base * 0.7 + stripes[..., None] * 0.5, 0, 255).astype(np.uint8)


def synthetic_skewed(height: int, width: int, seed: int = 0,
                     dense_fraction: float = 0.4,
                     dense_at_top: bool = False) -> np.ndarray:
    """Entropy concentrated in one horizontal band (bottom by default).

    Exercises the PPS re-partitioning path: the uniform-density
    assumption of Eq 4 mispredicts per-chunk Huffman times on such
    images, and Eq 16/17 must correct the split.
    """
    if not 0.0 < dense_fraction < 1.0:
        raise ReproError("dense_fraction must be in (0, 1)")
    smooth = synthetic_smooth(height, width, seed)
    detail = synthetic_detail(height, width, seed + 1)
    cut = int(height * (dense_fraction if dense_at_top else 1.0 - dense_fraction))
    out = smooth.copy()
    if dense_at_top:
        out[:cut] = detail[:cut]
    else:
        out[cut:] = detail[cut:]
    return out


def synthetic_gray(height: int, width: int, seed: int = 0) -> np.ndarray:
    """Gray-content RGB (R = G = B): the grayscale corpus member.

    The pipeline is three-component YCbCr end to end, so "grayscale"
    images are encoded as RGB whose channels agree — the chroma planes
    quantize to near-empty blocks, giving the luma-dominated entropy
    profile of a true grayscale scan.
    """
    luma = synthetic_photo(height, width, seed).mean(axis=2)
    return _to_uint8(np.repeat(luma[:, :, None], 3, axis=2))


#: Named generators, for corpus specs and CLI-ish example scripts.
GENERATORS = {
    "photo": synthetic_photo,
    "smooth": synthetic_smooth,
    "detail": synthetic_detail,
    "skewed": synthetic_skewed,
    "gray": synthetic_gray,
}


def marker_free_corpus(
    sizes: tuple[tuple[int, int], ...] = ((320, 240), (640, 480)),
    subsamplings: tuple[str, ...] = ("4:2:0", "4:2:2", "4:4:4"),
    kinds: tuple[str, ...] = ("photo", "detail", "smooth", "gray"),
    quality: int = 85,
    seed: int = 0,
) -> list[tuple[str, bytes]]:
    """Encode a deterministic DRI=0 corpus for speculative-decode work.

    Every member is encoded *without* restart markers, which the
    restart-segment fan-out cannot split — the corpus the speculative
    decoder (:mod:`repro.jpeg.speculative`) exists for.  Returns
    ``(name, jpeg_bytes)`` pairs; names encode the full recipe so test
    failures identify the member.
    """
    from ..jpeg.encoder import EncoderSettings, encode_jpeg

    corpus = []
    for kind in kinds:
        gen = GENERATORS[kind]
        for w, h in sizes:
            for sub in subsamplings:
                rgb = gen(h, w, seed=seed)
                data = encode_jpeg(rgb, EncoderSettings(
                    quality=quality, subsampling=sub, restart_interval=0))
                corpus.append((f"{kind}-{w}x{h}-{sub}-q{quality}", data))
    return corpus


def scenario_corpus(
    size: tuple[int, int] = (96, 64),
    subsamplings: tuple[str, ...] = ("4:4:4", "4:2:2", "4:2:0",
                                     "4:1:1", "4:4:0"),
    colorspaces: tuple[str, ...] = ("gray", "ycbcr", "ycck"),
    codings: tuple[str, ...] = ("baseline", "progressive"),
    quality: int = 85,
    seed: int = 0,
) -> list[tuple[str, bytes]]:
    """Encode the scenario-matrix corpus: coding x colorspace x sampling.

    Every valid cell of the decode scenario space as deterministic JPEG
    bytes: baseline and progressive (SOF2 multi-scan) streams over
    grayscale (1-component), YCbCr (3) and Adobe YCCK (4) layouts at
    every supported chroma subsampling.  Grayscale has no chroma, so it
    appears once (as 4:4:4).  Each progressive member carries the same
    quantized coefficients as its baseline twin — the differential
    harness in ``tests/test_scenario_matrix.py`` relies on the pair
    decoding pixel-identically.  Returns ``(name, jpeg_bytes)`` pairs.
    """
    from ..jpeg.encoder import EncoderSettings, encode_jpeg

    w, h = size
    rgb = synthetic_photo(h, w, seed=seed)
    corpus = []
    for coding in codings:
        for cs in colorspaces:
            subs = ("4:4:4",) if cs == "gray" else subsamplings
            for sub in subs:
                data = encode_jpeg(rgb, EncoderSettings(
                    quality=quality, subsampling=sub, colorspace=cs,
                    progressive=coding == "progressive"))
                corpus.append((f"{coding}-{cs}-{sub}-{w}x{h}-q{quality}",
                               data))
    return corpus
