"""Corpus builders mirroring the paper's methodology at laptop scale.

The paper crops base images into width x height grids: 19 bases -> 4449
training images, 17 bases -> 3597 test images, up to 25 MP.  Pure-Python
entropy decoding makes 25 MP impractical per-image, so the default grids
cap around 1-2 MP — the evaluated phenomena are ratio-shaped, not
absolute-size-shaped (DESIGN.md §5).

Encoded corpora are cached in-process keyed by their full parameter
tuple; building is deterministic (seeded).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..jpeg.encoder import EncoderSettings, encode_jpeg
from .synth import GENERATORS


@dataclass(frozen=True)
class CorpusSpec:
    """Parameters of a generated corpus."""

    kind: str = "photo"             # GENERATORS key
    sizes: tuple[tuple[int, int], ...] = (
        (256, 256), (384, 256), (512, 384), (512, 512), (768, 512),
        (1024, 768),
    )
    subsampling: str = "4:2:2"
    quality: int = 85
    seeds: tuple[int, ...] = (11,)
    detail_levels: tuple[float, ...] = (0.5,)


@dataclass(frozen=True)
class CorpusImage:
    """One encoded corpus member."""

    data: bytes
    width: int
    height: int
    subsampling: str
    seed: int
    kind: str

    @property
    def pixels(self) -> int:
        return self.width * self.height

    @property
    def density(self) -> float:
        return len(self.data) / self.pixels


def _generate_one(kind: str, width: int, height: int, seed: int,
                  detail: float, subsampling: str, quality: int) -> CorpusImage:
    gen = GENERATORS[kind]
    if kind == "photo":
        rgb = gen(height, width, seed=seed, detail=detail)
    else:
        rgb = gen(height, width, seed=seed)
    data = encode_jpeg(rgb, EncoderSettings(quality=quality,
                                            subsampling=subsampling))
    return CorpusImage(data=data, width=width, height=height,
                       subsampling=subsampling, seed=seed, kind=kind)


@lru_cache(maxsize=32)
def _build_cached(spec_key: tuple) -> tuple[CorpusImage, ...]:
    (kind, sizes, subsampling, quality, seeds, details) = spec_key
    images = []
    for (w, h) in sizes:
        for seed in seeds:
            for detail in details:
                images.append(_generate_one(
                    kind, w, h, seed, detail, subsampling, quality))
    return tuple(images)


def build_corpus(spec: CorpusSpec) -> list[CorpusImage]:
    """Build (or fetch from cache) the corpus described by *spec*."""
    key = (spec.kind, tuple(spec.sizes), spec.subsampling, spec.quality,
           tuple(spec.seeds), tuple(spec.detail_levels))
    return list(_build_cached(key))


def training_corpus(subsampling: str = "4:2:2") -> list[CorpusImage]:
    """Default *training* corpus (distinct seeds from the test corpus,
    as the paper keeps the sets disjoint)."""
    return build_corpus(CorpusSpec(
        subsampling=subsampling, seeds=(11, 12),
        detail_levels=(0.25, 0.75),
    ))


def test_corpus(subsampling: str = "4:2:2",
                sizes: tuple[tuple[int, int], ...] | None = None
                ) -> list[CorpusImage]:
    """Default *test* corpus — seeds disjoint from training."""
    spec = CorpusSpec(subsampling=subsampling, seeds=(101, 102),
                      detail_levels=(0.3, 0.6))
    if sizes is not None:
        spec = CorpusSpec(kind=spec.kind, sizes=sizes,
                          subsampling=subsampling, quality=spec.quality,
                          seeds=spec.seeds, detail_levels=spec.detail_levels)
    return build_corpus(spec)


def size_sweep_corpus(subsampling: str = "4:2:2",
                      max_side: int = 1024, seed: int = 201
                      ) -> list[CorpusImage]:
    """Geometric size ladder for the Figure 6/10/11 x-axes."""
    sizes = []
    side = 128
    while side <= max_side:
        sizes.append((side, side))
        sizes.append((min(side * 3 // 2, max_side), side))
        side *= 2
    # dedupe, keep order
    seen: set[tuple[int, int]] = set()
    uniq = [s for s in sizes if not (s in seen or seen.add(s))]
    return build_corpus(CorpusSpec(sizes=tuple(uniq), subsampling=subsampling,
                                   seeds=(seed,), detail_levels=(0.5,)))
