"""Deterministic synthetic corpora (DESIGN.md substitution for the
paper's photo corpora)."""

from .corpus import (
    CorpusImage,
    CorpusSpec,
    build_corpus,
    size_sweep_corpus,
    test_corpus,
    training_corpus,
)
from .synth import (
    GENERATORS,
    marker_free_corpus,
    scenario_corpus,
    synthetic_detail,
    synthetic_photo,
    synthetic_skewed,
    synthetic_smooth,
)

__all__ = [
    "CorpusImage",
    "CorpusSpec",
    "GENERATORS",
    "build_corpus",
    "marker_free_corpus",
    "scenario_corpus",
    "size_sweep_corpus",
    "synthetic_detail",
    "synthetic_photo",
    "synthetic_skewed",
    "synthetic_smooth",
    "test_corpus",
    "training_corpus",
]
