"""Experiment harness: runs decode modes over corpora and aggregates the
paper's metrics (speedups, coefficients of variation, Amdahl fractions,
load balance)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.decoder import HeterogeneousDecoder
from ..core.executors import DecodeResult, PreparedImage
from ..core.modes import EVALUATED_MODES, DecodeMode
from ..core.platform import Platform
from ..data.corpus import CorpusImage


@dataclass
class ImageMeasurement:
    """All-mode simulated timings for one image on one platform."""

    width: int
    height: int
    pixels: int
    density: float
    times_us: dict[DecodeMode, float]
    results: dict[DecodeMode, DecodeResult] = field(default_factory=dict)

    def speedup(self, mode: DecodeMode,
                baseline: DecodeMode = DecodeMode.SIMD) -> float:
        return self.times_us[baseline] / self.times_us[mode]


def prepare_corpus(images: list[CorpusImage]) -> list[PreparedImage]:
    """Entropy-decode every corpus image once (the expensive step)."""
    return [PreparedImage.from_bytes(img.data) for img in images]


def measure_corpus(
    platform: Platform,
    prepared: list[PreparedImage],
    modes: tuple[DecodeMode, ...] | None = None,
    keep_results: bool = False,
) -> list[ImageMeasurement]:
    """Run every mode over every prepared image; return per-image records."""
    modes = modes or tuple(DecodeMode)
    decoder = HeterogeneousDecoder.for_platform(platform)
    out = []
    for img in prepared:
        results = {m: decoder.decode(img, m) for m in modes}
        geo = img.geometry
        out.append(ImageMeasurement(
            width=geo.width, height=geo.height,
            pixels=geo.width * geo.height, density=img.density,
            times_us={m: r.total_us for m, r in results.items()},
            results=results if keep_results else {},
        ))
    return out


@dataclass(frozen=True)
class SpeedupSummary:
    """Average speedup +- coefficient of variation (Tables 2/3 cells)."""

    mode: DecodeMode
    mean: float
    cov_percent: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.cov_percent:.2f}%"


def summarize_speedups(
    measurements: list[ImageMeasurement],
    modes: tuple[DecodeMode, ...] = EVALUATED_MODES,
    baseline: DecodeMode = DecodeMode.SIMD,
) -> dict[DecodeMode, SpeedupSummary]:
    """Tables 2/3: mean speedup over the baseline with CoV."""
    out = {}
    for mode in modes:
        s = np.array([m.speedup(mode, baseline) for m in measurements])
        mean = float(s.mean())
        cov = float(100.0 * s.std() / mean) if mean > 0 else float("nan")
        out[mode] = SpeedupSummary(mode=mode, mean=mean, cov_percent=cov,
                                   n=len(s))
    return out


def speedup_series(
    measurements: list[ImageMeasurement],
    modes: tuple[DecodeMode, ...] = EVALUATED_MODES,
    baseline: DecodeMode = DecodeMode.SIMD,
) -> dict[DecodeMode, list[tuple[int, float]]]:
    """Figure 10: (pixels, speedup) series per mode, sorted by size."""
    out: dict[DecodeMode, list[tuple[int, float]]] = {m: [] for m in modes}
    for m in sorted(measurements, key=lambda r: r.pixels):
        for mode in modes:
            out[mode].append((m.pixels, m.speedup(mode, baseline)))
    return out


def amdahl_series(
    platform: Platform,
    prepared: list[PreparedImage],
    mode: DecodeMode = DecodeMode.PPS,
) -> list[tuple[int, float]]:
    """Figure 11: percent of the theoretical max speedup vs. pixels.

    Max speedup = Ttotal(SIMD) / THuff (Eq 19); both from the simulated
    execution of the same image.
    """
    decoder = HeterogeneousDecoder.for_platform(platform)
    series = []
    for img in sorted(prepared, key=lambda p: p.geometry.width * p.geometry.height):
        simd = decoder.decode(img, DecodeMode.SIMD)
        target = decoder.decode(img, mode)
        t_huff = simd.breakdown.get("huffman", 0.0)
        bound = simd.total_us / t_huff
        achieved = simd.total_us / target.total_us
        series.append((img.geometry.width * img.geometry.height,
                       100.0 * achieved / bound))
    return series


def balance_series(
    platform: Platform,
    prepared: list[PreparedImage],
    modes: tuple[DecodeMode, ...] = (DecodeMode.SPS, DecodeMode.PPS),
) -> dict[DecodeMode, list[tuple[int, float, float]]]:
    """Figure 12: (pixels, CPU parallel time, GPU time) per mode.

    CPU time counts only the parallel-phase spans (entropy decoding is
    omitted, as the paper does); GPU time counts transfers + kernels.
    """
    decoder = HeterogeneousDecoder.for_platform(platform)
    out: dict[DecodeMode, list[tuple[int, float, float]]] = {m: [] for m in modes}
    for img in sorted(prepared, key=lambda p: p.geometry.width * p.geometry.height):
        for mode in modes:
            res = decoder.decode(img, mode)
            cpu_us, gpu_us = res.timeline.parallel_exec_times()
            out[mode].append(
                (img.geometry.width * img.geometry.height, cpu_us, gpu_us))
    return out


def breakdown_for(
    platform: Platform,
    prepared: PreparedImage,
    modes: tuple[DecodeMode, ...] = (DecodeMode.SEQUENTIAL, DecodeMode.SIMD,
                                     DecodeMode.GPU),
) -> dict[DecodeMode, dict[str, float]]:
    """Figure 9: per-stage breakdowns, normalized by the SIMD total."""
    decoder = HeterogeneousDecoder.for_platform(platform)
    results = {m: decoder.decode(prepared, m) for m in modes}
    simd_total = results[DecodeMode.SIMD].total_us
    out = {}
    for mode, res in results.items():
        out[mode] = {k: v / simd_total for k, v in res.breakdown.items()}
        out[mode]["total"] = res.total_us / simd_total
    return out
