"""The three evaluation machines (paper Table 1)."""

from __future__ import annotations

from ..core.platform import Platform
from ..gpusim.device import GT430 as _GT430_GPU
from ..gpusim.device import GTX560TI as _GTX560_GPU
from ..gpusim.device import GTX680 as _GTX680_GPU
from ..gpusim.device import INTEL_I7_2600K, INTEL_I7_3770K

#: "GT 430" machine: i7-2600K + GT 430 — the weak-GPU configuration.
GT430 = Platform(name="GT 430", cpu=INTEL_I7_2600K, gpu=_GT430_GPU)

#: "GTX 560" machine: i7-2600K + GTX 560Ti — the mid-range configuration.
GTX560 = Platform(name="GTX 560", cpu=INTEL_I7_2600K, gpu=_GTX560_GPU)

#: "GTX 680" machine: i7-3770K + GTX 680 — the high-end configuration.
GTX680 = Platform(name="GTX 680", cpu=INTEL_I7_3770K, gpu=_GTX680_GPU)

#: Table 1 order.
ALL_PLATFORMS = (GT430, GTX560, GTX680)


def table1_rows() -> list[dict[str, str]]:
    """The hardware-specification table as printable rows."""
    rows = []
    for p in ALL_PLATFORMS:
        rows.append({
            "Machine name": p.name,
            "CPU model": p.cpu.name,
            "CPU frequency": f"{p.cpu.clock_ghz} GHz",
            "No. of CPU cores": str(p.cpu.cores),
            "GPU model": p.gpu.name,
            "GPU core frequency": f"{p.gpu.core_clock_mhz:.0f} MHz",
            "No. of GPU cores": str(p.gpu.cores),
            "GPU memory size": f"{p.gpu.memory_mb} MB",
            "Compute Capability": ".".join(map(str, p.gpu.compute_capability)),
        })
    return rows
