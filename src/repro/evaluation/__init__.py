"""Experiment harness regenerating the paper's tables and figures."""

from . import platforms
from .harness import (
    ImageMeasurement,
    SpeedupSummary,
    amdahl_series,
    balance_series,
    breakdown_for,
    measure_corpus,
    prepare_corpus,
    speedup_series,
    summarize_speedups,
)
from .platforms import ALL_PLATFORMS, GT430, GTX560, GTX680, table1_rows
from .tables import (
    format_breakdown,
    format_series,
    format_speedup_table,
    format_table,
)

__all__ = [
    "ALL_PLATFORMS",
    "GT430",
    "GTX560",
    "GTX680",
    "ImageMeasurement",
    "SpeedupSummary",
    "amdahl_series",
    "balance_series",
    "breakdown_for",
    "format_breakdown",
    "format_series",
    "format_speedup_table",
    "format_table",
    "measure_corpus",
    "platforms",
    "prepare_corpus",
    "speedup_series",
    "summarize_speedups",
    "table1_rows",
]
