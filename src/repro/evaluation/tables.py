"""Paper-style text rendering of tables and figure series."""

from __future__ import annotations

from ..core.modes import DecodeMode
from .harness import SpeedupSummary


def format_table(headers: list[str], rows: list[list[str]],
                 title: str = "") -> str:
    """Plain-text table with aligned columns."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


_MODE_LABELS = {
    DecodeMode.GPU: "GPU",
    DecodeMode.PIPELINE: "Pipeline",
    DecodeMode.SPS: "SPS",
    DecodeMode.PPS: "PPS",
    DecodeMode.SIMD: "SIMD",
    DecodeMode.SEQUENTIAL: "Sequential",
}


def format_speedup_table(
    summaries_by_platform: dict[str, dict[DecodeMode, SpeedupSummary]],
    title: str,
) -> str:
    """Tables 2/3 layout: modes as rows, machines as columns."""
    platforms = list(summaries_by_platform)
    modes = list(next(iter(summaries_by_platform.values())))
    headers = ["Mode"] + platforms
    rows = []
    for mode in modes:
        row = [_MODE_LABELS.get(mode, mode.value)]
        for p in platforms:
            row.append(str(summaries_by_platform[p][mode]))
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_series(series: list[tuple], headers: list[str],
                  title: str = "", fmt: str = "{:.3f}") -> str:
    """Figure data as a column table (pixels + one or more values)."""
    rows = []
    for tup in series:
        row = [str(int(tup[0]))]
        for v in tup[1:]:
            row.append(fmt.format(v))
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_breakdown(
    breakdowns: dict[DecodeMode, dict[str, float]], title: str = ""
) -> str:
    """Figure 9 layout: stages as rows, modes as columns (SIMD-normalized)."""
    modes = list(breakdowns)
    stages = sorted({s for b in breakdowns.values() for s in b})
    stages = [s for s in stages if s != "total"] + ["total"]
    headers = ["Stage"] + [_MODE_LABELS.get(m, m.value) for m in modes]
    rows = []
    for stage in stages:
        row = [stage]
        for m in modes:
            v = breakdowns[m].get(stage)
            row.append(f"{v:.3f}" if v is not None else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)
