"""Command-line interface: ``python -m repro <command>``.

Commands mirror the workflows the library supports:

- ``info FILE.jpg``            — parse and print header facts + density
- ``decode FILE.jpg OUT.ppm``  — decode to a binary PPM (P6)
- ``synth OUT.jpg``            — generate + encode a synthetic image
- ``profile``                  — run offline profiling, save model JSON
- ``evaluate``                 — all-mode simulated timings for one file
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np


def _cmd_info(args: argparse.Namespace) -> int:
    from .jpeg import parse_jpeg

    info = parse_jpeg(Path(args.file).read_bytes())
    print(f"file:          {args.file}")
    print(f"dimensions:    {info.width} x {info.height}")
    print(f"subsampling:   {info.subsampling_mode}")
    print(f"file size:     {info.file_size} bytes")
    print(f"entropy data:  {len(info.entropy_data)} bytes")
    print(f"density (Eq3): {info.file_density:.4f} bytes/pixel")
    print(f"restart intvl: {info.restart_interval or 'none'}")
    geo = info.geometry
    print(f"MCU grid:      {geo.mcus_per_row} x {geo.mcu_rows} "
          f"({geo.mcu_width}x{geo.mcu_height} px each)")
    return 0


def _write_ppm(path: Path, rgb: np.ndarray) -> None:
    h, w = rgb.shape[:2]
    with open(path, "wb") as f:
        f.write(f"P6\n{w} {h}\n255\n".encode())
        f.write(np.ascontiguousarray(rgb).tobytes())


def _cmd_decode(args: argparse.Namespace) -> int:
    data = Path(args.file).read_bytes()
    if args.mode == "reference":
        from .jpeg import DecodeOptions, decode_jpeg

        rgb = decode_jpeg(
            data, DecodeOptions(entropy_engine=args.entropy_engine)).rgb
    else:
        from .core import HeterogeneousDecoder
        from .evaluation import platforms

        plat = {p.name: p for p in platforms.ALL_PLATFORMS}[args.platform]
        decoder = HeterogeneousDecoder.for_platform(
            plat, entropy_engine=args.entropy_engine)
        result = decoder.decode(data, args.mode)
        rgb = result.rgb
        print(f"simulated {result.mode.value} decode: "
              f"{result.total_time_ms:.3f} ms")
    _write_ppm(Path(args.output), rgb)
    print(f"wrote {args.output} ({rgb.shape[1]}x{rgb.shape[0]})")
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from .data import GENERATORS
    from .jpeg import EncoderSettings, encode_jpeg

    gen = GENERATORS[args.kind]
    kwargs = {"detail": args.detail} if args.kind == "photo" else {}
    rgb = gen(args.height, args.width, seed=args.seed, **kwargs)
    data = encode_jpeg(rgb, EncoderSettings(
        quality=args.quality, subsampling=args.subsampling,
        restart_interval=args.restart_interval))
    Path(args.output).write_bytes(data)
    print(f"wrote {args.output}: {args.width}x{args.height} "
          f"{args.subsampling} q{args.quality}, {len(data)} bytes")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .core.profiling import profile_platform
    from .evaluation import platforms

    plat = {p.name: p for p in platforms.ALL_PLATFORMS}[args.platform]
    model = profile_platform(plat, args.subsampling)
    model.save(args.output)
    print(f"profiled {plat.name} ({args.subsampling}); model -> {args.output}")
    print(f"  work-group: {model.workgroup_blocks} blocks, "
          f"chunk: {model.chunk_mcu_rows} MCU rows")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .core import DecodeMode, HeterogeneousDecoder
    from .evaluation import platforms

    data = Path(args.file).read_bytes()
    plat = {p.name: p for p in platforms.ALL_PLATFORMS}[args.platform]
    decoder = HeterogeneousDecoder.for_platform(
        plat, entropy_engine=args.entropy_engine)
    prepared = decoder.prepare(data)
    print(f"{args.file} on {plat}:")
    simd_us = None
    for mode in DecodeMode:
        result = decoder.decode(prepared, mode)
        if mode is DecodeMode.SIMD:
            simd_us = result.total_us
        speed = f"{simd_us / result.total_us:5.2f}x" if simd_us else "     -"
        print(f"  {mode.value:<10} {result.total_time_ms:9.3f} ms  {speed}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Heterogeneous JPEG decompression (PMAM'14 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="print JPEG header facts")
    p.add_argument("file")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("decode", help="decode a JPEG to PPM")
    p.add_argument("file")
    p.add_argument("output")
    p.add_argument("--mode", default="reference",
                   choices=["reference", "sequential", "simd", "gpu",
                            "pipeline", "sps", "pps", "auto"])
    p.add_argument("--platform", default="GTX 560",
                   choices=["GT 430", "GTX 560", "GTX 680"])
    p.add_argument("--entropy-engine", default="fast",
                   choices=["fast", "reference"],
                   help="Huffman decode path (bit-exact; 'fast' uses the "
                        "fused-table engine)")
    p.set_defaults(func=_cmd_decode)

    p = sub.add_parser("synth", help="generate a synthetic JPEG")
    p.add_argument("output")
    p.add_argument("--kind", default="photo",
                   choices=["photo", "smooth", "detail", "skewed"])
    p.add_argument("--width", type=int, default=640)
    p.add_argument("--height", type=int, default=480)
    p.add_argument("--quality", type=int, default=85)
    p.add_argument("--subsampling", default="4:2:2",
                   choices=["4:4:4", "4:2:2", "4:2:0"])
    p.add_argument("--detail", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--restart-interval", type=int, default=0)
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser("profile", help="offline-profile a platform")
    p.add_argument("--platform", default="GTX 560",
                   choices=["GT 430", "GTX 560", "GTX 680"])
    p.add_argument("--subsampling", default="4:2:2",
                   choices=["4:4:4", "4:2:2"])
    p.add_argument("--output", default="model.json")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("evaluate", help="all-mode simulated timings")
    p.add_argument("file")
    p.add_argument("--platform", default="GTX 560",
                   choices=["GT 430", "GTX 560", "GTX 680"])
    p.add_argument("--entropy-engine", default="fast",
                   choices=["fast", "reference"],
                   help="Huffman decode path used to prepare the image")
    p.set_defaults(func=_cmd_evaluate)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
