"""Command-line interface: ``python -m repro <command>``.

Commands mirror the workflows the library supports:

- ``info FILE.jpg``            — parse and print header facts + density
- ``decode FILE.jpg OUT.ppm``  — decode to a binary PPM (P6)
- ``synth OUT.jpg``            — generate + encode a synthetic image
- ``profile``                  — run offline profiling, save model JSON
- ``evaluate``                 — all-mode simulated timings for one file
- ``serve-batch FILE...``      — pull-driven batched decode service over
  a worker pool (bounded queue, per-batch stats; see :mod:`repro.service`)
- ``serve --port N``           — HTTP decode service over a futures-based
  :class:`~repro.service.session.DecodeSession` (``POST /decode`` →
  PPM/metadata, ``GET /stats``, 429 on backpressure; see
  :mod:`repro.service.http`); with ``--hosts host:port,...`` the
  session shards batches across remote worker hosts (see
  :mod:`repro.service.remote`)
- ``serve-worker --port N``    — one shard of the sharded serving tier:
  a decode session behind the length-prefixed TCP protocol the front
  tier's remote lanes speak
- ``trace TRACE_ID``           — render one collected trace from a
  ``--trace-log`` JSON-lines file as an ASCII Gantt + span tree (the
  measured counterpart of the paper's Figure 5/8 timelines)
- ``timeline --last N``        — render the N most recent traces from a
  ``--trace-log`` file

The serving commands (``serve``, ``serve-worker``, ``serve-batch``)
share the tracing flags: ``--tracing off|on|sample`` gates per-request
trace spans, ``--trace-sample`` sets the sampled fraction, and
``--trace-log FILE`` appends every completed span as one JSON object
per line (rotation-safe) for ``repro trace`` / ``repro timeline``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np


def _cmd_info(args: argparse.Namespace) -> int:
    from .jpeg import parse_jpeg

    info = parse_jpeg(Path(args.file).read_bytes())
    coding = ("progressive" if info.progressive else "baseline")
    print(f"file:          {args.file}")
    print(f"dimensions:    {info.width} x {info.height}")
    print(f"coding:        {coding}, {len(info.scans)} scan(s), "
          f"{len(info.frame.components)} component(s)")
    print(f"subsampling:   {info.subsampling_mode}")
    print(f"file size:     {info.file_size} bytes")
    print(f"entropy data:  {len(info.entropy_data)} bytes")
    print(f"density (Eq3): {info.file_density:.4f} bytes/pixel")
    print(f"restart intvl: {info.restart_interval or 'none'}")
    geo = info.geometry
    print(f"MCU grid:      {geo.mcus_per_row} x {geo.mcu_rows} "
          f"({geo.mcu_width}x{geo.mcu_height} px each)")
    return 0


def _write_ppm(path: Path, rgb: np.ndarray) -> None:
    # Deliberately not repro.service.http.ppm_bytes: the basic decode
    # path must not drag the whole service package into its imports.
    h, w = rgb.shape[:2]
    with open(path, "wb") as f:
        f.write(f"P6\n{w} {h}\n255\n".encode())
        f.write(np.ascontiguousarray(rgb).tobytes())


def _cmd_decode(args: argparse.Namespace) -> int:
    data = Path(args.file).read_bytes()
    if args.mode == "reference":
        from .jpeg import DecodeOptions, decode_jpeg

        decoded = decode_jpeg(data, DecodeOptions(
            entropy_engine=args.entropy_engine, salvage=args.salvage))
        rgb = decoded.rgb
        if decoded.salvaged:
            bad = int(decoded.error_map.sum())
            print(f"salvaged decode: {bad} damaged MCU(s); "
                  + "; ".join(decoded.errors), file=sys.stderr)
    else:
        from .core import HeterogeneousDecoder
        from .evaluation import platforms

        plat = {p.name: p for p in platforms.ALL_PLATFORMS}[args.platform]
        decoder = HeterogeneousDecoder.for_platform(
            plat, entropy_engine=args.entropy_engine)
        result = decoder.decode(data, args.mode)
        rgb = result.rgb
        print(f"simulated {result.mode.value} decode: "
              f"{result.total_time_ms:.3f} ms")
    _write_ppm(Path(args.output), rgb)
    print(f"wrote {args.output} ({rgb.shape[1]}x{rgb.shape[0]})")
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from .data import GENERATORS
    from .jpeg import EncoderSettings, encode_jpeg

    gen = GENERATORS[args.kind]
    kwargs = {"detail": args.detail} if args.kind == "photo" else {}
    rgb = gen(args.height, args.width, seed=args.seed, **kwargs)
    data = encode_jpeg(rgb, EncoderSettings(
        quality=args.quality, subsampling=args.subsampling,
        restart_interval=args.restart_interval,
        colorspace=args.colorspace, progressive=args.progressive))
    Path(args.output).write_bytes(data)
    coding = "progressive " if args.progressive else ""
    print(f"wrote {args.output}: {coding}{args.colorspace} "
          f"{args.width}x{args.height} "
          f"{args.subsampling} q{args.quality}, {len(data)} bytes")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .core.profiling import profile_platform
    from .evaluation import platforms

    plat = {p.name: p for p in platforms.ALL_PLATFORMS}[args.platform]
    model = profile_platform(plat, args.subsampling)
    model.save(args.output)
    print(f"profiled {plat.name} ({args.subsampling}); model -> {args.output}")
    print(f"  work-group: {model.workgroup_blocks} blocks, "
          f"chunk: {model.chunk_mcu_rows} MCU rows")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .core import DecodeMode, HeterogeneousDecoder
    from .evaluation import platforms

    data = Path(args.file).read_bytes()
    plat = {p.name: p for p in platforms.ALL_PLATFORMS}[args.platform]
    decoder = HeterogeneousDecoder.for_platform(
        plat, entropy_engine=args.entropy_engine)
    prepared = decoder.prepare(data)
    print(f"{args.file} on {plat}:")
    simd_us = None
    for mode in DecodeMode:
        result = decoder.decode(prepared, mode)
        if mode is DecodeMode.SIMD:
            simd_us = result.total_us
        speed = f"{simd_us / result.total_us:5.2f}x" if simd_us else "     -"
        print(f"  {mode.value:<10} {result.total_time_ms:9.3f} ms  {speed}")
    return 0


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    from .data import synthetic_photo
    from .errors import QueueFullError
    from .jpeg import EncoderSettings, encode_jpeg
    from .service import DecodeService, ImageRequest

    # Assemble the input set: named files, plus --synth generated images.
    blobs: list[tuple[str, bytes]] = [
        (f, Path(f).read_bytes()) for f in args.files
    ]
    for i in range(args.synth):
        rgb = synthetic_photo(480, 640, seed=i, detail=0.6)
        blobs.append((f"synth-{i}", encode_jpeg(rgb, EncoderSettings(
            quality=85, subsampling="4:2:2",
            restart_interval=8 if i % 2 else 0))))
    if not blobs:
        print("no inputs: pass JPEG files and/or --synth N", file=sys.stderr)
        return 2

    split = {"auto": None, "always": True, "never": False}[args.split_segments]
    out_dir = Path(args.out_dir) if args.out_dir else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)

    scheduler = _build_scheduler(args.schedule, args.platform,
                                 args.breaker_threshold)
    lane_pools = None if args.lane_pools == "none" else args.lane_pools
    failures = 0
    with DecodeService(batch_size=args.batch_size,
                       queue_capacity=args.queue_capacity,
                       workers=args.workers, backend=args.backend,
                       scheduler=scheduler, transport=args.transport,
                       lane_pools=lane_pools,
                       retry_budget=args.retry_budget,
                       default_deadline_ms=args.default_deadline_ms,
                       speculative=args.speculative,
                       tracing=args.tracing, trace_sample=args.trace_sample,
                       trace_log=args.trace_log) as svc:
        print(f"serve-batch: {len(blobs)} inputs x{args.repeat}, "
              f"batch={args.batch_size}, queue={args.queue_capacity}, "
              f"{svc.decoder.pool.workers} x {svc.decoder.pool.backend} "
              f"workers, transport={svc.decoder.transport}"
              + (f", schedule={args.schedule}" if scheduler else "")
              + (f", lane-pools={args.lane_pools}" if lane_pools else ""))

        def handle(batch) -> None:
            nonlocal failures
            print(f"  {batch.stats.format()}")
            if batch.schedule is not None:
                print(f"  {batch.schedule.format()}")
            for r in batch:
                if not r.ok:
                    failures += 1
                    print(f"    FAIL {r.request_id}: "
                          f"{r.error_type}: {r.error}", file=sys.stderr)
                    continue
                if r.salvaged:
                    print(f"    SALVAGED {r.request_id}: "
                          + "; ".join(r.salvage_errors), file=sys.stderr)
                if out_dir is not None:
                    name = str(r.request_id).replace("/", "_")
                    _write_ppm(out_dir / f"{name}.ppm", r.rgb)

        for k in range(args.repeat):
            for name, data in blobs:
                req = ImageRequest(
                    data=data, request_id=f"{name}@{k}" if args.repeat > 1
                    else name,
                    entropy_engine=args.entropy_engine, mode=args.mode,
                    platform=args.platform, split_segments=split,
                    salvage=args.salvage)
                while True:
                    try:
                        svc.submit(req, timeout=0)
                        break
                    except QueueFullError:
                        # Backpressure: drain one batch, then retry.
                        batch = svc.run_once()
                        if batch is not None:
                            handle(batch)
        for batch in svc.drain():
            handle(batch)
        print(f"summary: {svc.stats.format()}")
    return 1 if failures else 0


def _build_scheduler(schedule: str, platform: str,
                     breaker_threshold: int | None = None):
    """Scheduler instance for serve/serve-batch (None when disabled).

    *breaker_threshold* tunes the lane circuit breakers (consecutive
    infrastructure failures before a lane trips open); None keeps the
    :class:`~repro.service.scheduler.LaneBreakerBoard` defaults.
    """
    if schedule == "none":
        return None
    from .evaluation import platforms
    from .service import LaneBreakerBoard, ModelScheduler

    plat = {p.name: p for p in platforms.ALL_PLATFORMS}[platform]
    breakers = (LaneBreakerBoard(threshold=breaker_threshold)
                if breaker_threshold is not None else None)
    return ModelScheduler(policy=schedule, platform=plat, breakers=breakers)


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .service import DecodeHTTPServer

    session = None
    if args.hosts:
        # Sharded front tier: the session's scheduler lanes are remote
        # worker hosts; the HTTP shim rides on top unchanged.
        from .service import LaneBreakerBoard
        from .service.remote import ShardedDecodeSession

        breakers = (LaneBreakerBoard(threshold=args.breaker_threshold)
                    if args.breaker_threshold is not None else None)
        policy = "roundrobin" if args.schedule == "roundrobin" else "model"
        session = ShardedDecodeSession(
            hosts=args.hosts, policy=policy, depth=args.shard_depth,
            breakers=breakers,
            max_batch=args.max_batch, max_delay_ms=args.max_delay_ms,
            queue_capacity=args.queue_capacity,
            retry_budget=args.retry_budget,
            default_deadline_ms=args.default_deadline_ms,
            tracing=args.tracing, trace_sample=args.trace_sample,
            trace_log=args.trace_log)
        server = DecodeHTTPServer(session=session, host=args.host,
                                  port=args.port)
        print(f"serve: listening on {server.url} "
              f"(max_batch={args.max_batch}, "
              f"max_delay={args.max_delay_ms}ms, "
              f"queue={args.queue_capacity}, sharded across "
              f"{len(session.hosts)} hosts [{', '.join(session.hosts)}], "
              f"depth={args.shard_depth}, schedule={policy})", flush=True)
    else:
        server = DecodeHTTPServer(
            host=args.host, port=args.port,
            max_batch=args.max_batch, max_delay_ms=args.max_delay_ms,
            queue_capacity=args.queue_capacity,
            workers=args.workers, backend=args.backend,
            scheduler=_build_scheduler(args.schedule, args.platform,
                                       args.breaker_threshold),
            transport=args.transport,
            lane_pools=(None if args.lane_pools == "none"
                        else args.lane_pools),
            retry_budget=args.retry_budget,
            default_deadline_ms=args.default_deadline_ms,
            speculative=args.speculative,
            tracing=args.tracing, trace_sample=args.trace_sample,
            trace_log=args.trace_log)
        pool = server.session.decoder.pool
        print(f"serve: listening on {server.url} "
              f"(max_batch={args.max_batch}, "
              f"max_delay={args.max_delay_ms}ms, "
              f"queue={args.queue_capacity}, "
              f"{pool.workers} x {pool.backend} workers, "
              f"transport={server.session.decoder.transport}"
              + (f", schedule={args.schedule}"
                 if args.schedule != "none" else "")
              + (f", lane-pools={args.lane_pools}"
                 if args.lane_pools != "none" else "")
              + ")", flush=True)
    print("endpoints: POST /decode (JPEG in, PPM out; ?format=json for "
          "metadata), GET /stats, GET /metrics, GET /healthz", flush=True)

    # Graceful drain on SIGTERM/SIGINT: stop accepting connections,
    # decode everything already accepted, exit 0.  The handler must not
    # call server.shutdown() inline — it runs on the main thread, which
    # is inside serve_forever, and shutdown() blocks until that loop
    # exits — so a helper thread issues the stop.
    draining = threading.Event()

    def _graceful(signum: int, frame: object) -> None:
        if draining.is_set():
            return
        draining.set()
        print(f"received {signal.Signals(signum).name}: draining, "
              f"no longer accepting requests", file=sys.stderr, flush=True)
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous: dict[int, object] = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _graceful)
        except ValueError:
            pass  # not the main thread (embedded use): no signal hooks
    try:
        server.serve_forever(max_requests=args.max_requests)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        # close() drains the owned session: every accepted request's
        # handle resolves before the pool shuts down.  A sharded session
        # is external to the server, so it is drained here instead.
        server.close()
        if session is not None:
            session.close(drain=True)
        print(f"summary: {server.session.stats.format()}")
    return 0


def _cmd_serve_worker(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .service.remote import DecodeWorkerHost

    host = DecodeWorkerHost(
        host=args.host, port=args.port,
        max_batch=args.max_batch, max_delay_ms=args.max_delay_ms,
        queue_capacity=args.queue_capacity,
        workers=args.workers, backend=args.backend,
        scheduler=_build_scheduler(args.schedule, args.platform,
                                   args.breaker_threshold),
        transport=args.transport,
        lane_pools=None if args.lane_pools == "none" else args.lane_pools,
        retry_budget=args.retry_budget,
        speculative=args.speculative,
        tracing=args.tracing, trace_sample=args.trace_sample,
        trace_log=args.trace_log)
    pool = host.session.decoder.pool
    print(f"serve-worker: listening on {host.endpoint} "
          f"(max_batch={args.max_batch}, max_delay={args.max_delay_ms}ms, "
          f"queue={args.queue_capacity}, "
          f"{pool.workers} x {pool.backend} workers"
          + (f", schedule={args.schedule}" if args.schedule != "none" else "")
          + (f", lane-pools={args.lane_pools}"
             if args.lane_pools != "none" else "")
          + ")", flush=True)

    # Same graceful-drain shape as serve: shutdown() only flags the
    # accept loop and is safe inline, but severing live connections and
    # draining the session happens in close() on the way out.
    draining = threading.Event()

    def _graceful(signum: int, frame: object) -> None:
        if draining.is_set():
            return
        draining.set()
        print(f"received {signal.Signals(signum).name}: draining, "
              f"no longer accepting connections", file=sys.stderr, flush=True)
        host.shutdown()

    previous: dict[int, object] = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _graceful)
        except ValueError:
            pass  # not the main thread (embedded use): no signal hooks
    try:
        host.serve_forever()
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        host.close()
        print(f"summary: {host.session.stats.format()}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .service.obs import format_trace, read_trace_log

    path = Path(args.trace_log)
    if not path.exists():
        print(f"no trace log at {path} (run a serving command with "
              f"--trace-log {path})", file=sys.stderr)
        return 2
    traces = read_trace_log(path)
    spans = traces.get(args.trace_id)
    if not spans:
        # Prefix match, so operators can paste a truncated id.
        matches = [tid for tid in traces if tid.startswith(args.trace_id)]
        if len(matches) == 1:
            spans = traces[matches[0]]
        elif matches:
            print(f"ambiguous trace id {args.trace_id!r}: "
                  + ", ".join(matches), file=sys.stderr)
            return 2
    if not spans:
        print(f"trace {args.trace_id!r} not found in {path} "
              f"({len(traces)} trace(s) logged)", file=sys.stderr)
        return 2
    _print_clipped(format_trace(spans[0].trace_id, spans,
                                width=args.width))
    return 0


def _print_clipped(text: str) -> None:
    """Print, tolerating a downstream pager/head closing the pipe."""
    try:
        print(text)
    except BrokenPipeError:
        # The reader (e.g. `| head`) closed stdout; silence the late
        # flush at interpreter shutdown and stop emitting.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(0)


def _cmd_timeline(args: argparse.Namespace) -> int:
    from .service.obs import format_trace, read_trace_log

    path = Path(args.trace_log)
    if not path.exists():
        print(f"no trace log at {path} (run a serving command with "
              f"--trace-log {path})", file=sys.stderr)
        return 2
    traces = read_trace_log(path)
    if not traces:
        print(f"{path} holds no complete spans yet", file=sys.stderr)
        return 2
    recent = list(traces.items())[-args.last:]
    _print_clipped(f"{len(traces)} trace(s) in {path}; "
                   f"showing last {len(recent)}")
    for trace_id, spans in recent:
        _print_clipped("\n" + format_trace(trace_id, spans,
                                           width=args.width))
    return 0


def _add_tracing_args(p: argparse.ArgumentParser) -> None:
    """The shared tracing flags of serve / serve-worker / serve-batch."""
    p.add_argument("--tracing", default="off",
                   choices=["off", "on", "sample"],
                   help="per-request trace spans: 'on' traces every "
                        "request, 'sample' a deterministic 1-in-N "
                        "fraction (--trace-sample), 'off' keeps the "
                        "no-op fast path (default)")
    p.add_argument("--trace-sample", type=float, default=0.1,
                   help="sampled fraction for --tracing sample "
                        "(default: 0.1)")
    p.add_argument("--trace-log", default=None,
                   help="append completed spans to this JSON-lines file "
                        "(one object per span, rotation-safe; feeds "
                        "'repro trace' and 'repro timeline')")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Heterogeneous JPEG decompression (PMAM'14 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="print JPEG header facts")
    p.add_argument("file")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("decode", help="decode a JPEG to PPM")
    p.add_argument("file")
    p.add_argument("output")
    p.add_argument("--mode", default="reference",
                   choices=["reference", "sequential", "simd", "gpu",
                            "pipeline", "sps", "pps", "auto"])
    p.add_argument("--platform", default="GTX 560",
                   choices=["GT 430", "GTX 560", "GTX 680"])
    p.add_argument("--entropy-engine", default="fast",
                   choices=["fast", "reference"],
                   help="Huffman decode path (bit-exact; 'fast' uses the "
                        "fused-table engine)")
    p.add_argument("--salvage", action="store_true",
                   help="best-effort decode of corrupt streams (reference "
                        "mode): return the rows decoded before the error "
                        "plus an error-region report instead of failing")
    p.set_defaults(func=_cmd_decode)

    p = sub.add_parser("synth", help="generate a synthetic JPEG")
    p.add_argument("output")
    p.add_argument("--kind", default="photo",
                   choices=["photo", "smooth", "detail", "skewed", "gray"])
    p.add_argument("--width", type=int, default=640)
    p.add_argument("--height", type=int, default=480)
    p.add_argument("--quality", type=int, default=85)
    p.add_argument("--subsampling", default="4:2:2",
                   choices=["4:4:4", "4:2:2", "4:2:0", "4:1:1", "4:4:0"])
    p.add_argument("--colorspace", default="ycbcr",
                   choices=["gray", "ycbcr", "ycck"],
                   help="encoded layout: 1-component grayscale, "
                        "3-component YCbCr, or 4-component Adobe YCCK")
    p.add_argument("--progressive", action="store_true",
                   help="emit a progressive (SOF2) multi-scan stream "
                        "instead of a baseline one")
    p.add_argument("--detail", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--restart-interval", type=int, default=0)
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser("profile", help="offline-profile a platform")
    p.add_argument("--platform", default="GTX 560",
                   choices=["GT 430", "GTX 560", "GTX 680"])
    p.add_argument("--subsampling", default="4:2:2",
                   choices=["4:4:4", "4:2:2"])
    p.add_argument("--output", default="model.json")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("evaluate", help="all-mode simulated timings")
    p.add_argument("file")
    p.add_argument("--platform", default="GTX 560",
                   choices=["GT 430", "GTX 560", "GTX 680"])
    p.add_argument("--entropy-engine", default="fast",
                   choices=["fast", "reference"],
                   help="Huffman decode path used to prepare the image")
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser(
        "serve-batch",
        help="batched decode service: queue + worker pool + stats")
    p.add_argument("files", nargs="*",
                   help="JPEG files to decode (may be empty with --synth)")
    p.add_argument("--synth", type=int, default=0,
                   help="also generate N synthetic 640x480 JPEGs")
    p.add_argument("--batch-size", type=int, default=8)
    p.add_argument("--queue-capacity", type=int, default=32)
    p.add_argument("--workers", type=int, default=None,
                   help="pool size (default: all cores)")
    p.add_argument("--backend", default=None,
                   choices=["process", "thread", "serial"],
                   help="worker pool backend (default: process on "
                        "multi-core hosts, serial otherwise)")
    p.add_argument("--entropy-engine", default="fast",
                   choices=["fast", "reference"])
    p.add_argument("--mode", default="reference",
                   choices=["reference", "sequential", "simd", "gpu",
                            "pipeline", "sps", "pps", "auto"])
    p.add_argument("--platform", default="GTX 560",
                   choices=["GT 430", "GTX 560", "GTX 680"])
    p.add_argument("--split-segments", default="auto",
                   choices=["auto", "always", "never"],
                   help="restart-segment fan-out for DRI images")
    p.add_argument("--speculative", default="auto",
                   choices=["auto", "on", "off"],
                   help="speculative chunk fan-out for marker-free "
                        "(DRI=0) images: optimistic parallel Huffman "
                        "decode stitched by bit-position convergence; "
                        "'auto' fans out only when the batch cannot "
                        "fill the pool")
    p.add_argument("--schedule", default="none",
                   choices=["none", "model", "roundrobin"],
                   help="cross-image batch scheduling: price each image "
                        "on the platform's SIMD and GPU lanes with the "
                        "fitted performance model and place whole images "
                        "(LPT for 'model', cyclic for 'roundrobin'); "
                        "overrides --mode per image")
    p.add_argument("--transport", default="auto",
                   choices=["auto", "shm", "pickle"],
                   help="how process-pool workers return decoded planes: "
                        "shared-memory segments + descriptors ('shm') or "
                        "the pickle result pipe; 'auto' picks shm whenever "
                        "a process pool and working POSIX shm exist")
    p.add_argument("--lane-pools", default="none",
                   help="bind scheduler lanes to dedicated pools "
                        "(requires --schedule): 'auto' for the default "
                        "layout (each GPU lane its own pool, CPU lanes "
                        "share the remaining cores) or a spec like "
                        "'gpu=1,simd=process:3'")
    p.add_argument("--repeat", type=int, default=1,
                   help="feed the input set N times (soak/throughput)")
    p.add_argument("--out-dir", default=None,
                   help="write decoded PPMs into this directory")
    p.add_argument("--retry-budget", type=int, default=None,
                   help="redispatches per image after a worker crash "
                        "before the request fails (default: 2)")
    p.add_argument("--breaker-threshold", type=int, default=None,
                   help="consecutive infrastructure failures before a "
                        "scheduler lane's circuit breaker trips open "
                        "(requires --schedule; default: 3)")
    p.add_argument("--default-deadline-ms", type=float, default=None,
                   help="queueing deadline applied to requests that do "
                        "not carry one; expired requests are shed "
                        "before decode (default: none)")
    p.add_argument("--salvage", action="store_true",
                   help="best-effort decode of corrupt streams: damaged "
                        "images resolve ok with an error-region map "
                        "instead of failing the request")
    _add_tracing_args(p)
    p.set_defaults(func=_cmd_serve_batch)

    p = sub.add_parser(
        "serve",
        help="HTTP decode service over a futures-based session "
             "(POST /decode, GET /stats)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8077,
                   help="listening port (0 = ephemeral, printed at start)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="dispatch a batch as soon as this many requests "
                        "are pending")
    p.add_argument("--max-delay-ms", type=float, default=2.0,
                   help="dispatch a partial batch once its oldest request "
                        "has waited this long")
    p.add_argument("--queue-capacity", type=int, default=32,
                   help="bounded submission queue; full = HTTP 429")
    p.add_argument("--workers", type=int, default=None,
                   help="pool size (default: all cores)")
    p.add_argument("--backend", default=None,
                   choices=["process", "thread", "serial"],
                   help="worker pool backend (default: process on "
                        "multi-core hosts, serial otherwise)")
    p.add_argument("--schedule", default="none",
                   choices=["none", "model", "roundrobin"],
                   help="cross-image batch scheduling inside the pump "
                        "(see serve-batch --schedule)")
    p.add_argument("--transport", default="auto",
                   choices=["auto", "shm", "pickle"],
                   help="worker→parent result transport "
                        "(see serve-batch --transport)")
    p.add_argument("--lane-pools", default="none",
                   help="lane-bound executor pools "
                        "(see serve-batch --lane-pools)")
    p.add_argument("--platform", default="GTX 560",
                   choices=["GT 430", "GTX 560", "GTX 680"],
                   help="platform whose lanes a scheduler prices")
    p.add_argument("--max-requests", type=int, default=None,
                   help="exit after N connections (smoke tests/demos; "
                        "default: serve forever)")
    p.add_argument("--retry-budget", type=int, default=None,
                   help="redispatches per image after a worker crash "
                        "before the request fails (default: 2)")
    p.add_argument("--breaker-threshold", type=int, default=None,
                   help="consecutive infrastructure failures before a "
                        "scheduler lane's circuit breaker trips open "
                        "(requires --schedule; default: 3)")
    p.add_argument("--default-deadline-ms", type=float, default=None,
                   help="queueing deadline applied to requests without "
                        "an X-Deadline-Ms header; expired requests "
                        "answer 504 (default: none)")
    p.add_argument("--speculative", default="auto",
                   choices=["auto", "on", "off"],
                   help="speculative chunk fan-out for marker-free "
                        "images (see serve-batch --speculative)")
    p.add_argument("--hosts", default=None,
                   help="shard decode across worker hosts "
                        "('host:port,host:port', see serve-worker); "
                        "--workers/--backend/--transport/--lane-pools "
                        "then apply to the hosts, not this process")
    p.add_argument("--shard-depth", type=int, default=2,
                   help="bounded in-flight requests per worker host "
                        "(backpressure on placement; default: 2)")
    _add_tracing_args(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "serve-worker",
        help="one shard of the sharded serving tier: a decode session "
             "behind the length-prefixed TCP protocol that "
             "'serve --hosts' fronts")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9077,
                   help="listening port (0 = ephemeral, printed at start)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="dispatch a batch as soon as this many requests "
                        "are pending")
    p.add_argument("--max-delay-ms", type=float, default=2.0,
                   help="dispatch a partial batch once its oldest request "
                        "has waited this long")
    p.add_argument("--queue-capacity", type=int, default=32,
                   help="bounded submission queue")
    p.add_argument("--workers", type=int, default=None,
                   help="pool size (default: all cores)")
    p.add_argument("--backend", default=None,
                   choices=["process", "thread", "serial"],
                   help="worker pool backend (default: process on "
                        "multi-core hosts, serial otherwise)")
    p.add_argument("--schedule", default="none",
                   choices=["none", "model", "roundrobin"],
                   help="cross-image batch scheduling inside this host "
                        "(see serve-batch --schedule)")
    p.add_argument("--transport", default="auto",
                   choices=["auto", "shm", "pickle"],
                   help="worker→parent result transport "
                        "(see serve-batch --transport)")
    p.add_argument("--lane-pools", default="none",
                   help="lane-bound executor pools "
                        "(see serve-batch --lane-pools)")
    p.add_argument("--platform", default="GTX 560",
                   choices=["GT 430", "GTX 560", "GTX 680"],
                   help="platform whose lanes a scheduler prices")
    p.add_argument("--retry-budget", type=int, default=None,
                   help="redispatches per image after a worker crash "
                        "before the request fails (default: 2)")
    p.add_argument("--breaker-threshold", type=int, default=None,
                   help="consecutive infrastructure failures before a "
                        "scheduler lane's circuit breaker trips open "
                        "(requires --schedule; default: 3)")
    p.add_argument("--speculative", default="auto",
                   choices=["auto", "on", "off"],
                   help="speculative chunk fan-out for marker-free "
                        "images (see serve-batch --speculative)")
    _add_tracing_args(p)
    p.set_defaults(func=_cmd_serve_worker)

    p = sub.add_parser(
        "trace",
        help="render one collected trace as an ASCII Gantt + span tree")
    p.add_argument("trace_id",
                   help="trace id (or unique prefix) from an X-Trace-Id "
                        "response header or the trace log")
    p.add_argument("--trace-log", default="traces.jsonl",
                   help="JSON-lines span log a serving command wrote "
                        "(default: traces.jsonl)")
    p.add_argument("--width", type=int, default=78,
                   help="Gantt chart width in characters (default: 78)")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "timeline",
        help="render the most recent collected traces as ASCII Gantts")
    p.add_argument("--last", type=int, default=5,
                   help="how many of the most recent traces to render "
                        "(default: 5)")
    p.add_argument("--trace-log", default="traces.jsonl",
                   help="JSON-lines span log a serving command wrote "
                        "(default: traces.jsonl)")
    p.add_argument("--width", type=int, default=78,
                   help="Gantt chart width in characters (default: 78)")
    p.set_defaults(func=_cmd_timeline)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
